// Unit tests for the WAL: record encode/decode for every type, the log
// manager (append/flush/crash truncation), the costed recovery iterator,
// random access reads and the master record.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/clock.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace deutero {
namespace {

LogRecord RoundTrip(const LogRecord& in) {
  const std::string payload = in.EncodePayload();
  LogRecord out;
  const Status st = LogRecord::DecodePayload(in.type, Slice(payload), &out);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

TEST(LogRecordTest, UpdateRoundTrip) {
  LogRecord r;
  r.type = LogRecordType::kUpdate;
  r.txn_id = 77;
  r.table_id = 3;
  r.key = 123456789;
  r.before = "oldvalue";
  r.after = "newvalue";
  r.pid = 42;
  r.prev_lsn = 999;
  const LogRecord out = RoundTrip(r);
  EXPECT_EQ(out.txn_id, 77u);
  EXPECT_EQ(out.table_id, 3u);
  EXPECT_EQ(out.key, 123456789u);
  EXPECT_EQ(out.before, "oldvalue");
  EXPECT_EQ(out.after, "newvalue");
  EXPECT_EQ(out.pid, 42u);
  EXPECT_EQ(out.prev_lsn, 999u);
}

TEST(LogRecordTest, InsertRoundTripEmptyBefore) {
  LogRecord r;
  r.type = LogRecordType::kInsert;
  r.txn_id = 1;
  r.table_id = 1;
  r.key = 5;
  r.after = "v";
  r.pid = 9;
  const LogRecord out = RoundTrip(r);
  EXPECT_TRUE(out.before.empty());
  EXPECT_EQ(out.after, "v");
}

TEST(LogRecordTest, DeleteRoundTripCarriesBeforeImage) {
  LogRecord r;
  r.type = LogRecordType::kDelete;
  r.txn_id = 9;
  r.table_id = 2;
  r.key = 77;
  r.before = "victim";  // undo re-inserts this
  r.pid = 13;
  r.prev_lsn = 456;
  const LogRecord out = RoundTrip(r);
  EXPECT_EQ(out.type, LogRecordType::kDelete);
  EXPECT_EQ(out.txn_id, 9u);
  EXPECT_EQ(out.table_id, 2u);
  EXPECT_EQ(out.key, 77u);
  EXPECT_EQ(out.before, "victim");
  EXPECT_TRUE(out.after.empty());
  EXPECT_EQ(out.pid, 13u);
  EXPECT_EQ(out.prev_lsn, 456u);
  EXPECT_TRUE(out.IsRedoableDataOp());
}

TEST(LogRecordTest, ClrRoundTrip) {
  LogRecord r;
  r.type = LogRecordType::kClr;
  r.txn_id = 8;
  r.table_id = 1;
  r.key = 44;
  r.after = "restored";
  r.pid = 17;
  r.undo_next_lsn = 1234;
  const LogRecord out = RoundTrip(r);
  EXPECT_EQ(out.undo_next_lsn, 1234u);
  EXPECT_EQ(out.after, "restored");
}

TEST(LogRecordTest, TxnControlRoundTrip) {
  for (LogRecordType t : {LogRecordType::kTxnBegin, LogRecordType::kTxnCommit,
                          LogRecordType::kTxnAbort}) {
    LogRecord r;
    r.type = t;
    r.txn_id = 500;
    r.prev_lsn = 600;
    const LogRecord out = RoundTrip(r);
    EXPECT_EQ(out.txn_id, 500u);
    EXPECT_EQ(out.prev_lsn, 600u);
  }
}

TEST(LogRecordTest, CheckpointRecordsRoundTrip) {
  LogRecord b;
  b.type = LogRecordType::kBeginCheckpoint;
  EXPECT_TRUE(RoundTrip(b).type == LogRecordType::kBeginCheckpoint);

  LogRecord e;
  e.type = LogRecordType::kEndCheckpoint;
  e.bckpt_lsn = 4242;
  EXPECT_EQ(RoundTrip(e).bckpt_lsn, 4242u);

  LogRecord a;
  a.type = LogRecordType::kRsspAck;
  a.bckpt_lsn = 17;
  EXPECT_EQ(RoundTrip(a).bckpt_lsn, 17u);
}

TEST(LogRecordTest, BwRecordRoundTrip) {
  LogRecord r;
  r.type = LogRecordType::kBwRecord;
  r.fw_lsn = 7777;
  r.written_set = {1, 5, 9, 100000};
  const LogRecord out = RoundTrip(r);
  EXPECT_EQ(out.fw_lsn, 7777u);
  EXPECT_EQ(out.written_set, (std::vector<PageId>{1, 5, 9, 100000}));
}

TEST(LogRecordTest, DeltaRecordStandardRoundTrip) {
  LogRecord r;
  r.type = LogRecordType::kDeltaRecord;
  r.dirty_set = {4, 8, 15, 16, 23, 42};
  r.written_set = {4, 8};
  r.fw_lsn = 300;
  r.first_dirty = 2;
  r.tc_lsn = 500;
  r.has_fw_fields = true;
  const LogRecord out = RoundTrip(r);
  EXPECT_EQ(out.dirty_set, r.dirty_set);
  EXPECT_EQ(out.written_set, r.written_set);
  EXPECT_EQ(out.fw_lsn, 300u);
  EXPECT_EQ(out.first_dirty, 2u);
  EXPECT_EQ(out.tc_lsn, 500u);
  EXPECT_TRUE(out.has_fw_fields);
  EXPECT_TRUE(out.dirty_lsns.empty());
}

TEST(LogRecordTest, DeltaRecordReducedOmitsFwFields) {
  LogRecord r;
  r.type = LogRecordType::kDeltaRecord;
  r.dirty_set = {1, 2};
  r.written_set = {3};
  r.tc_lsn = 99;
  r.has_fw_fields = false;
  const std::string reduced = r.EncodePayload();
  r.has_fw_fields = true;
  const std::string standard = r.EncodePayload();
  EXPECT_LT(reduced.size(), standard.size());  // App. D.2: less logging
  LogRecord out;
  ASSERT_TRUE(LogRecord::DecodePayload(LogRecordType::kDeltaRecord,
                                       Slice(reduced), &out)
                  .ok());
  EXPECT_FALSE(out.has_fw_fields);
  EXPECT_EQ(out.tc_lsn, 99u);
}

TEST(LogRecordTest, DeltaRecordPerfectCarriesDirtyLsns) {
  LogRecord r;
  r.type = LogRecordType::kDeltaRecord;
  r.dirty_set = {1, 2, 3};
  r.dirty_lsns = {10, 20, 30};
  r.tc_lsn = 40;
  r.fw_lsn = 15;
  r.first_dirty = 1;
  const LogRecord out = RoundTrip(r);
  EXPECT_EQ(out.dirty_lsns, (std::vector<Lsn>{10, 20, 30}));
}

TEST(LogRecordTest, SmoRoundTrip) {
  LogRecord r;
  r.type = LogRecordType::kSmo;
  r.alloc_hwm = 1000;
  r.smo_pages.push_back({5, std::string(64, 'a')});
  r.smo_pages.push_back({6, std::string(64, 'b')});
  const LogRecord out = RoundTrip(r);
  ASSERT_EQ(out.smo_pages.size(), 2u);
  EXPECT_EQ(out.alloc_hwm, 1000u);
  EXPECT_EQ(out.smo_pages[0].pid, 5u);
  EXPECT_EQ(out.smo_pages[1].image, std::string(64, 'b'));
}

TEST(LogRecordTest, CorruptPayloadRejected) {
  LogRecord r;
  r.type = LogRecordType::kUpdate;
  r.txn_id = 1;
  r.before = "abc";
  r.after = "def";
  std::string payload = r.EncodePayload();
  payload.resize(payload.size() - 2);  // truncate
  LogRecord out;
  EXPECT_TRUE(LogRecord::DecodePayload(LogRecordType::kUpdate, Slice(payload),
                                       &out)
                  .IsCorruption());
}

TEST(LogRecordTest, TrailingBytesRejected) {
  LogRecord r;
  r.type = LogRecordType::kTxnBegin;
  r.txn_id = 1;
  std::string payload = r.EncodePayload();
  payload += "garbage";
  LogRecord out;
  EXPECT_TRUE(LogRecord::DecodePayload(LogRecordType::kTxnBegin,
                                       Slice(payload), &out)
                  .IsCorruption());
}

// ---------------------------------------------------------------------------
// LogManager
// ---------------------------------------------------------------------------

class LogManagerTest : public ::testing::Test {
 protected:
  LogManagerTest() : log_(&clock_, /*log_page_size=*/128, 0.25) {}

  Lsn AppendBegin(TxnId txn) {
    LogRecord r;
    r.type = LogRecordType::kTxnBegin;
    r.txn_id = txn;
    return log_.Append(r);
  }

  SimClock clock_;
  LogManager log_;
};

TEST_F(LogManagerTest, LsnsAreMonotonicByteOffsets) {
  const Lsn a = AppendBegin(1);
  const Lsn b = AppendBegin(2);
  EXPECT_EQ(a, kFirstLsn);
  EXPECT_GT(b, a);
  EXPECT_EQ(log_.next_lsn(), b + (b - a));
}

TEST_F(LogManagerTest, FlushAdvancesStableEnd) {
  AppendBegin(1);
  EXPECT_EQ(log_.stable_end(), kFirstLsn);
  log_.Flush();
  EXPECT_EQ(log_.stable_end(), log_.next_lsn());
}

TEST_F(LogManagerTest, CrashDiscardsUnflushedTail) {
  AppendBegin(1);
  log_.Flush();
  const Lsn stable = log_.stable_end();
  AppendBegin(2);
  AppendBegin(3);
  log_.Crash();
  EXPECT_EQ(log_.next_lsn(), stable);
  auto it = log_.NewIterator(kFirstLsn, false);
  int n = 0;
  for (; it.Valid(); it.Next()) n++;
  EXPECT_EQ(n, 1);
}

TEST_F(LogManagerTest, IteratorSeesOnlyStableRecords) {
  AppendBegin(1);
  AppendBegin(2);
  log_.Flush();
  AppendBegin(3);  // volatile
  int n = 0;
  for (auto it = log_.NewIterator(kFirstLsn, false); it.Valid(); it.Next()) {
    n++;
  }
  EXPECT_EQ(n, 2);
}

TEST_F(LogManagerTest, IteratorReturnsRecordsInOrderWithLsns) {
  std::vector<Lsn> lsns;
  for (TxnId t = 1; t <= 5; t++) lsns.push_back(AppendBegin(t));
  log_.Flush();
  size_t i = 0;
  for (auto it = log_.NewIterator(kFirstLsn, false); it.Valid();
       it.Next(), i++) {
    ASSERT_LT(i, lsns.size());
    EXPECT_EQ(it.lsn(), lsns[i]);
    EXPECT_EQ(it.record().txn_id, i + 1);
  }
  EXPECT_EQ(i, 5u);
}

TEST_F(LogManagerTest, IteratorChargesPerLogPage) {
  // 128-byte log pages; a txn-begin record is ~15 bytes, so ~9 per page.
  for (TxnId t = 1; t <= 40; t++) AppendBegin(t);
  log_.Flush();
  const double before = clock_.NowMs();
  auto it = log_.NewIterator(kFirstLsn, /*charge_io=*/true);
  uint64_t n = 0;
  for (; it.Valid(); it.Next()) n++;
  EXPECT_EQ(n, 40u);
  EXPECT_GT(it.pages_read(), 2u);
  EXPECT_NEAR(clock_.NowMs() - before, it.pages_read() * 0.25, 1e-9);
}

TEST_F(LogManagerTest, IteratorWithoutChargingIsFree) {
  for (TxnId t = 1; t <= 40; t++) AppendBegin(t);
  log_.Flush();
  for (auto it = log_.NewIterator(kFirstLsn, false); it.Valid(); it.Next()) {
  }
  EXPECT_DOUBLE_EQ(clock_.NowMs(), 0.0);
}

TEST_F(LogManagerTest, IteratorFromMidLog) {
  AppendBegin(1);
  const Lsn second = AppendBegin(2);
  AppendBegin(3);
  log_.Flush();
  auto it = log_.NewIterator(second, false);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.record().txn_id, 2u);
}

TEST_F(LogManagerTest, ReadRecordAtRandomAccess) {
  AppendBegin(1);
  const Lsn b = AppendBegin(2);
  log_.Flush();
  LogRecord rec;
  ASSERT_TRUE(log_.ReadRecordAt(b, &rec, false).ok());
  EXPECT_EQ(rec.txn_id, 2u);
  EXPECT_EQ(rec.lsn, b);
}

TEST_F(LogManagerTest, ReadRecordAtVolatileTailWorks) {
  const Lsn a = AppendBegin(1);  // not flushed
  LogRecord rec;
  ASSERT_TRUE(log_.ReadRecordAt(a, &rec, false).ok());
  EXPECT_EQ(rec.txn_id, 1u);
}

TEST_F(LogManagerTest, ReadRecordAtInvalidLsnFails) {
  AppendBegin(1);
  log_.Flush();
  LogRecord rec;
  EXPECT_FALSE(log_.ReadRecordAt(0, &rec, false).ok());
  EXPECT_FALSE(log_.ReadRecordAt(log_.next_lsn() + 100, &rec, false).ok());
}

TEST_F(LogManagerTest, MasterRecordPersistsAcrossCrash) {
  MasterRecord m;
  m.bckpt_lsn = 10;
  m.eckpt_lsn = 20;
  m.checkpoint_count = 3;
  log_.WriteMaster(m);
  AppendBegin(1);
  log_.Crash();
  EXPECT_EQ(log_.master().bckpt_lsn, 10u);
  EXPECT_EQ(log_.master().checkpoint_count, 3u);
}

TEST_F(LogManagerTest, SnapshotRestoreRoundTrip) {
  AppendBegin(1);
  log_.Flush();
  MasterRecord m;
  m.bckpt_lsn = kFirstLsn;
  log_.WriteMaster(m);
  auto snap = log_.TakeSnapshot();

  AppendBegin(2);
  log_.Flush();
  log_.RestoreSnapshot(snap);
  int n = 0;
  for (auto it = log_.NewIterator(kFirstLsn, false); it.Valid(); it.Next()) {
    n++;
  }
  EXPECT_EQ(n, 1);
  EXPECT_EQ(log_.master().bckpt_lsn, kFirstLsn);
}

TEST_F(LogManagerTest, CorruptedRecordTerminatesScan) {
  const Lsn a = AppendBegin(1);
  const Lsn b = AppendBegin(2);
  AppendBegin(3);
  log_.Flush();
  // Flip a payload bit of the second record: the scan must deliver the
  // first record and stop at the corruption instead of mis-parsing.
  log_.CorruptByteForTest(b + 10);
  std::vector<Lsn> seen;
  for (auto it = log_.NewIterator(kFirstLsn, false); it.Valid(); it.Next()) {
    seen.push_back(it.lsn());
  }
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], a);
}

TEST_F(LogManagerTest, CorruptedLengthFieldTerminatesScan) {
  AppendBegin(1);
  const Lsn b = AppendBegin(2);
  log_.Flush();
  log_.CorruptByteForTest(b);  // length field
  int n = 0;
  for (auto it = log_.NewIterator(kFirstLsn, false); it.Valid(); it.Next()) {
    n++;
  }
  EXPECT_EQ(n, 1);
}

TEST_F(LogManagerTest, ReadRecordAtDetectsCorruption) {
  const Lsn a = AppendBegin(1);
  log_.Flush();
  log_.CorruptByteForTest(a + 5);  // CRC field itself
  LogRecord rec;
  EXPECT_FALSE(log_.ReadRecordAt(a, &rec, false).ok());
}

TEST_F(LogManagerTest, CheckpointRecordAttRoundTripsThroughLog) {
  LogRecord b;
  b.type = LogRecordType::kBeginCheckpoint;
  b.att_txn_ids = {7, 9};
  b.att_last_lsns = {100, 200};
  b.ckpt_dpt_pids = {4, 5, 6};
  b.ckpt_dpt_rlsns = {40, 50, 60};
  const Lsn lsn = log_.Append(b);
  log_.Flush();
  LogRecord out;
  ASSERT_TRUE(log_.ReadRecordAt(lsn, &out, false).ok());
  EXPECT_EQ(out.att_txn_ids, (std::vector<TxnId>{7, 9}));
  EXPECT_EQ(out.att_last_lsns, (std::vector<Lsn>{100, 200}));
  EXPECT_EQ(out.ckpt_dpt_pids, (std::vector<PageId>{4, 5, 6}));
  EXPECT_EQ(out.ckpt_dpt_rlsns, (std::vector<Lsn>{40, 50, 60}));
}

// ---------------------------------------------------------------------------
// LogRecordView: zero-copy aliasing rules.
// ---------------------------------------------------------------------------

TEST(LogRecordViewTest, DecodeAliasesPayloadBuffer) {
  LogRecord r;
  r.type = LogRecordType::kUpdate;
  r.txn_id = 7;
  r.table_id = 1;
  r.key = 11;
  r.before = "oldvalue";
  r.after = "newvalue";
  r.pid = 3;
  const std::string payload = r.EncodePayload();
  LogRecordView v;
  ASSERT_TRUE(
      LogRecordView::DecodePayload(LogRecordType::kUpdate, Slice(payload), &v)
          .ok());
  // The slices point INTO the payload — no copies were made.
  EXPECT_GE(v.before.data(), payload.data());
  EXPECT_LE(v.before.data() + v.before.size(),
            payload.data() + payload.size());
  EXPECT_GE(v.after.data(), payload.data());
  EXPECT_EQ(v.before.ToString(), "oldvalue");
  EXPECT_EQ(v.after.ToString(), "newvalue");
  EXPECT_EQ(v.ToOwned().after, "newvalue");
}

TEST(LogRecordViewTest, SmoImagesAliasPayloadBuffer) {
  LogRecord r;
  r.type = LogRecordType::kSmo;
  r.alloc_hwm = 9;
  r.smo_pages.push_back({5, std::string(128, 'a')});
  const std::string payload = r.EncodePayload();
  LogRecordView v;
  ASSERT_TRUE(
      LogRecordView::DecodePayload(LogRecordType::kSmo, Slice(payload), &v)
          .ok());
  ASSERT_EQ(v.smo_pages.size(), 1u);
  EXPECT_EQ(v.smo_pages[0].pid, 5u);
  EXPECT_EQ(v.smo_pages[0].image.size(), 128u);
  EXPECT_GE(v.smo_pages[0].image.data(), payload.data());
  EXPECT_LE(v.smo_pages[0].image.data() + 128,
            payload.data() + payload.size());
}

TEST(LogRecordViewTest, ScratchVectorsKeepCapacityAcrossReset) {
  LogRecordView v;
  v.dirty_set.assign(64, 1);
  v.att_txn_ids.assign(16, 2);
  const size_t cap = v.dirty_set.capacity();
  v.Reset();
  EXPECT_TRUE(v.dirty_set.empty());
  EXPECT_TRUE(v.att_txn_ids.empty());
  EXPECT_GE(v.dirty_set.capacity(), cap);  // clear(), not shrink
}

TEST_F(LogManagerTest, ViewFieldsStayValidAcrossFullRecoveryScan) {
  // Append a mix of record shapes, then verify every view field against an
  // owned re-read WHILE other views from the same scan are outstanding —
  // the recovery-time usage pattern.
  std::vector<Lsn> lsns;
  for (int i = 0; i < 50; i++) {
    LogRecord r;
    r.type = LogRecordType::kUpdate;
    r.txn_id = static_cast<TxnId>(i + 1);
    r.table_id = 1;
    r.key = static_cast<Key>(i * 10);
    r.before = "before-" + std::to_string(i);
    r.after = "after-" + std::to_string(i);
    r.pid = static_cast<PageId>(i);
    lsns.push_back(log_.Append(r));
  }
  log_.Flush();
  size_t i = 0;
  for (auto it = log_.NewIterator(kFirstLsn, false); it.Valid();
       it.Next(), i++) {
    const LogRecordView& v = it.record();
    ASSERT_LT(i, lsns.size());
    EXPECT_EQ(v.lsn, lsns[i]);
    EXPECT_EQ(v.txn_id, i + 1);
    EXPECT_EQ(v.key, i * 10);
    EXPECT_EQ(v.before.ToString(), "before-" + std::to_string(i));
    EXPECT_EQ(v.after.ToString(), "after-" + std::to_string(i));
    // Cross-check against the owning reader.
    LogRecord owned;
    ASSERT_TRUE(log_.ReadRecordAt(v.lsn, &owned, false).ok());
    EXPECT_EQ(owned.after, v.after.ToString());
  }
  EXPECT_EQ(i, 50u);
}

TEST_F(LogManagerTest, GenerationBumpsOnEveryViewInvalidatingMutation) {
  // Contract (PR 8): the generation bumps exactly when outstanding views
  // can dangle — buffer growth that relocates storage, Crash(),
  // RestoreSnapshot(). An append whose window fits in committed capacity
  // leaves views intact (the bytes they alias never move).
  const uint64_t g0 = log_.generation();
  AppendBegin(1);  // grows the 1-byte pad buffer: storage relocates
  const uint64_t g1 = log_.generation();
  EXPECT_GT(g1, g0);
  log_.Flush();
  EXPECT_EQ(log_.generation(), g1);  // flush moves no bytes
  AppendBegin(2);
  EXPECT_EQ(log_.generation(), g1);  // fits in capacity: views stay valid
  log_.Crash();  // discards the unflushed tail
  const uint64_t g2 = log_.generation();
  EXPECT_GT(g2, g1);
  const auto snap = log_.TakeSnapshot();
  EXPECT_EQ(log_.generation(), g2);  // snapshot reads only
  log_.RestoreSnapshot(snap);
  EXPECT_GT(log_.generation(), g2);
}

TEST_F(LogManagerTest, IteratorCapturesGenerationAtParseTime) {
  AppendBegin(1);
  AppendBegin(2);
  log_.Flush();
  auto it = log_.NewIterator(kFirstLsn, false);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.record().txn_id, 1u);  // valid: no mutation since parse
  it.Next();
  EXPECT_EQ(it.record().txn_id, 2u);  // Next() re-parses: valid again
}

#if GTEST_HAS_DEATH_TEST && !defined(NDEBUG)
TEST_F(LogManagerTest, StaleViewAccessDiesInDebugBuilds) {
  AppendBegin(1);
  log_.Flush();
  auto it = log_.NewIterator(kFirstLsn, false);
  ASSERT_TRUE(it.Valid());
  log_.Crash();  // invalidates the outstanding view
  EXPECT_DEATH((void)it.record(), "LogRecordView used across log mutation");
}
#endif

TEST_F(LogManagerTest, StatsCountByTypeAndBytes) {
  AppendBegin(1);
  LogRecord d;
  d.type = LogRecordType::kDeltaRecord;
  d.dirty_set = {1, 2, 3};
  d.tc_lsn = 5;
  log_.Append(d);
  EXPECT_EQ(log_.stats().records_appended, 2u);
  EXPECT_EQ(
      log_.stats().by_type[static_cast<size_t>(LogRecordType::kTxnBegin)],
      1u);
  EXPECT_EQ(
      log_.stats().by_type[static_cast<size_t>(LogRecordType::kDeltaRecord)],
      1u);
  EXPECT_GT(log_.stats().delta_bytes, 0u);
  EXPECT_EQ(log_.stats().bw_bytes, 0u);
}

}  // namespace
}  // namespace deutero
