// Engine facade tests: lifecycle state machine, snapshot/restore, and the
// crash model (volatile state dropped, stable state kept).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/engine.h"
#include "storage/page.h"
#include "test_util.h"
#include "workload/driver.h"

namespace deutero {
namespace {

using testing_util::SmallOptions;

std::string V(const Engine& e, Key k, uint32_t version) {
  return SynthesizeValueString(k, version, e.options().value_size);
}

TEST(EngineTest, OpenBulkLoadsAndTakesInitialCheckpoint) {
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(SmallOptions(), &e));
  EXPECT_TRUE(e->running());
  EXPECT_EQ(e->wal().master().checkpoint_count, 1u);
  std::string v;
  ASSERT_OK(e->Read(0, &v));
  ASSERT_OK(e->Read(SmallOptions().num_rows - 1, &v));
  EXPECT_TRUE(e->Read(SmallOptions().num_rows, &v).IsNotFound());
}

TEST(EngineTest, OperationsRejectedWhileCrashed) {
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(SmallOptions(), &e));
  e->SimulateCrash();
  EXPECT_FALSE(e->running());
  TxnId t;
  EXPECT_TRUE(e->Begin(&t).IsInvalidArgument());
  std::string v;
  EXPECT_TRUE(e->Read(1, &v).IsInvalidArgument());
  EXPECT_TRUE(e->Checkpoint().IsInvalidArgument());
}

TEST(EngineTest, RecoverRejectedWhileRunning) {
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(SmallOptions(), &e));
  RecoveryStats st;
  EXPECT_TRUE(e->Recover(RecoveryMethod::kLog1, &st).IsInvalidArgument());
}

TEST(EngineTest, CrashDropsUnflushedLogTail) {
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(SmallOptions(), &e));
  TxnId t;
  ASSERT_OK(e->Begin(&t));
  ASSERT_OK(e->Update(t, 3, V(*e, 3, 1)));
  // No commit, no flush: the update exists only in the volatile tail.
  const Lsn stable = e->wal().stable_end();
  EXPECT_GT(e->wal().next_lsn(), stable);
  e->SimulateCrash();
  EXPECT_EQ(e->wal().next_lsn(), stable);
  RecoveryStats st;
  ASSERT_OK(e->Recover(RecoveryMethod::kLog1, &st));
  std::string v;
  ASSERT_OK(e->Read(3, &v));
  EXPECT_EQ(v, V(*e, 3, 0));  // the unlogged update evaporated
}

// Regression: Engine::Recover(method, nullptr) crashed with a null deref —
// RecoveryManager::Recover zeroes *stats unconditionally, and the engine
// passed the caller's pointer straight through even though the parameter
// is documented optional elsewhere (the standby's recovery path already
// carried its own local). Found during the [[nodiscard]]/annotation sweep
// (PR 10); the engine now substitutes a local when the caller passes none.
TEST(EngineTest, RecoverWithNullStatsSucceeds) {
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(SmallOptions(), &e));
  TxnId t;
  ASSERT_OK(e->Begin(&t));
  ASSERT_OK(e->Update(t, 3, V(*e, 3, 1)));
  ASSERT_OK(e->Commit(t));
  e->SimulateCrash();
  ASSERT_OK(e->Recover(RecoveryMethod::kLog2, nullptr));
  std::string v;
  ASSERT_OK(e->Read(3, &v));
  EXPECT_EQ(v, V(*e, 3, 1));
  // The phase breakdown still lands in EngineStats off the internal local.
  EXPECT_GT(e->Stats().recovery_total_ms, 0.0);
}

TEST(EngineTest, SnapshotRequiresCrashedState) {
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(SmallOptions(), &e));
  Engine::StableSnapshot snap;
  EXPECT_TRUE(e->TakeStableSnapshot(&snap).IsInvalidArgument());
  e->SimulateCrash();
  ASSERT_OK(e->TakeStableSnapshot(&snap));
  EXPECT_TRUE(e->RestoreStableSnapshot(snap).ok());
}

TEST(EngineTest, SnapshotRestoreReplaysIdentically) {
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(SmallOptions(), &e));
  WorkloadDriver driver(e.get(), WorkloadConfig{});
  ASSERT_OK(driver.RunOps(300));
  ASSERT_OK(e->Checkpoint());
  ASSERT_OK(driver.RunOps(300));
  driver.OnCrash();
  e->SimulateCrash();

  Engine::StableSnapshot snap;
  ASSERT_OK(e->TakeStableSnapshot(&snap));

  RecoveryStats first, second;
  ASSERT_OK(e->Recover(RecoveryMethod::kSql1, &first));
  e->SimulateCrash();
  ASSERT_OK(e->RestoreStableSnapshot(snap));
  ASSERT_OK(e->Recover(RecoveryMethod::kSql1, &second));
  EXPECT_DOUBLE_EQ(first.total_ms, second.total_ms);
  EXPECT_EQ(first.data_page_fetches, second.data_page_fetches);
  EXPECT_EQ(first.dpt_size, second.dpt_size);
}

TEST(EngineTest, ClockResetsAtCrash) {
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(SmallOptions(), &e));
  WorkloadDriver driver(e.get(), WorkloadConfig{});
  ASSERT_OK(driver.RunOps(100));
  EXPECT_GT(e->clock().NowMs(), 0.0);
  driver.OnCrash();
  e->SimulateCrash();
  EXPECT_DOUBLE_EQ(e->clock().NowMs(), 0.0);
}

TEST(EngineTest, NormalOperationResumesAfterRecovery) {
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(SmallOptions(), &e));
  WorkloadDriver driver(e.get(), WorkloadConfig{});
  ASSERT_OK(driver.RunOps(200));
  driver.OnCrash();
  e->SimulateCrash();
  RecoveryStats st;
  ASSERT_OK(e->Recover(RecoveryMethod::kLog2, &st));

  // Post-recovery: updates, checkpoints and another crash/recover cycle.
  ASSERT_OK(driver.RunOps(200));
  ASSERT_OK(e->Checkpoint());
  ASSERT_OK(driver.RunOps(100));
  driver.OnCrash();
  e->SimulateCrash();
  ASSERT_OK(e->Recover(RecoveryMethod::kSql2, &st));
  uint64_t checked = 0;
  ASSERT_OK(driver.Verify(0, &checked));
  EXPECT_GT(checked, 0u);
}

TEST(EngineTest, MonitoringResumesAfterRecovery) {
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(SmallOptions(), &e));
  WorkloadDriver driver(e.get(), WorkloadConfig{});
  ASSERT_OK(driver.RunOps(100));
  driver.OnCrash();
  e->SimulateCrash();
  RecoveryStats st;
  ASSERT_OK(e->Recover(RecoveryMethod::kLog1, &st));
  const uint64_t deltas_before = e->dc().monitor().stats().delta_records;
  ASSERT_OK(driver.RunOps(1000));
  EXPECT_GT(e->dc().monitor().stats().delta_records, deltas_before);
}

TEST(EngineTest, DirtyWatermarkScalesWithCacheCurve) {
  EngineOptions small = SmallOptions();
  EngineOptions big = SmallOptions();
  big.cache_pages = small.cache_pages * 8;
  std::unique_ptr<Engine> a, b;
  ASSERT_OK(Engine::Open(small, &a));
  ASSERT_OK(Engine::Open(big, &b));
  const uint64_t wa = a->dc().pool().dirty_watermark();
  const uint64_t wb = b->dc().pool().dirty_watermark();
  EXPECT_GT(wb, wa);           // absolute watermark grows
  EXPECT_LT(wb, wa * 8);       // ...sub-linearly (Fig. 2(b) calibration)
}

// Every system-transaction record (SMO split, CreateTable) must stamp its
// own LSN into the pLSN of every page image it carries — the idempotence
// test during redo depends on it. A tiny Δ-capacity forces the dirty
// monitor to hit emission pressure inside the system transaction, which
// without AtomicScope deferral would interleave a Δ-record between the
// LSN reservation and the append and break the invariant.
TEST(EngineTest, SmoPageImagesCarryTheirRecordLsn) {
  EngineOptions o = SmallOptions();
  o.delta_dirty_capacity = 2;
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(o, &e));
  // Insert-heavy load: new keys force leaf (and eventually internal/root)
  // splits while the tiny Δ-capacity keeps the monitor at emission pressure.
  Key next = o.num_rows;
  for (int txn = 0; txn < 40; txn++) {
    TxnId t;
    ASSERT_OK(e->Begin(&t));
    for (int i = 0; i < 10; i++, next++) {
      const std::string v = V(*e, next, 1);
      ASSERT_OK(e->Insert(t, next, v));
    }
    ASSERT_OK(e->Commit(t));
  }
  ASSERT_OK(e->CreateTable(/*table=*/7, /*value_size=*/16));
  e->wal().Flush();
  size_t images_checked = 0;
  for (auto it = e->wal().NewIterator(kFirstLsn, /*charge_io=*/false);
       it.Valid(); it.Next()) {
    const LogRecordView& rec = it.record();
    if (rec.type != LogRecordType::kSmo &&
        rec.type != LogRecordType::kCreateTable) {
      continue;
    }
    for (const SmoPageImageRef& p : rec.smo_pages) {
      std::vector<uint8_t> img(p.image.data(),
                               p.image.data() + p.image.size());
      PageView view(img.data(), o.page_size);
      EXPECT_EQ(view.plsn(), it.lsn()) << "pid " << p.pid;
      images_checked++;
    }
  }
  EXPECT_GT(images_checked, 0u);  // the bulk load must have split pages
}

}  // namespace
}  // namespace deutero
