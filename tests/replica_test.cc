// Logical log shipping tests (paper §1.1): a replica with a DIFFERENT page
// geometry applies the primary's logical records and converges to identical
// logical content.
#include <gtest/gtest.h>

#include <memory>

#include "core/replica.h"
#include "test_util.h"
#include "workload/driver.h"

namespace deutero {
namespace {

using testing_util::SmallOptions;

class ReplicaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    primary_opts_ = SmallOptions();           // 1 KB pages
    replica_opts_ = SmallOptions();
    replica_opts_.page_size = 4096;           // different physical geometry
    replica_opts_.cache_pages = 32;
    ASSERT_OK(Engine::Open(primary_opts_, &primary_));
    ASSERT_OK(LogicalReplica::Open(replica_opts_, &replica_));
  }

  void ExpectConverged() {
    // Full logical comparison through both engines' scan paths.
    std::vector<std::pair<Key, std::string>> a, b;
    ASSERT_OK(primary_->dc().btree().ScanAll(
        [&](Key k, Slice v) { a.emplace_back(k, v.ToString()); }));
    ASSERT_OK(replica_->engine().dc().btree().ScanAll(
        [&](Key k, Slice v) { b.emplace_back(k, v.ToString()); }));
    EXPECT_EQ(a, b);
  }

  EngineOptions primary_opts_;
  EngineOptions replica_opts_;
  std::unique_ptr<Engine> primary_;
  std::unique_ptr<LogicalReplica> replica_;
};

TEST_F(ReplicaTest, CommittedTransactionsReplicate) {
  WorkloadDriver driver(primary_.get(), WorkloadConfig{});
  ASSERT_OK(driver.RunOps(300));
  Lsn next = kFirstLsn;
  ASSERT_OK(replica_->SyncFrom(primary_->wal(), kFirstLsn, &next));
  EXPECT_EQ(replica_->txns_applied(), driver.txns_committed());
  ExpectConverged();
}

TEST_F(ReplicaTest, IncrementalSyncResumesCleanly) {
  WorkloadDriver driver(primary_.get(), WorkloadConfig{});
  Lsn next = kFirstLsn;
  for (int round = 0; round < 5; round++) {
    ASSERT_OK(driver.RunOps(100));
    ASSERT_OK(replica_->SyncFrom(primary_->wal(), next, &next));
  }
  ExpectConverged();
}

TEST_F(ReplicaTest, AbortedTransactionsAreNotApplied) {
  TxnId t;
  ASSERT_OK(primary_->Begin(&t));
  ASSERT_OK(primary_->Update(
      t, 7, SynthesizeValueString(7, 1, primary_opts_.value_size)));
  ASSERT_OK(primary_->Abort(t));
  Lsn next = kFirstLsn;
  ASSERT_OK(replica_->SyncFrom(primary_->wal(), kFirstLsn, &next));
  EXPECT_EQ(replica_->txns_applied(), 0u);
  std::string v;
  ASSERT_OK(replica_->Read(7, &v));
  EXPECT_EQ(v, SynthesizeValueString(7, 0, primary_opts_.value_size));
}

TEST_F(ReplicaTest, UncommittedTailStaysBuffered) {
  TxnId t;
  ASSERT_OK(primary_->Begin(&t));
  ASSERT_OK(primary_->Update(
      t, 9, SynthesizeValueString(9, 1, primary_opts_.value_size)));
  primary_->tc().ForceLog();
  Lsn next = kFirstLsn;
  ASSERT_OK(replica_->SyncFrom(primary_->wal(), kFirstLsn, &next));
  EXPECT_EQ(replica_->ops_applied(), 0u);
  // Commit arrives in the next batch; the buffered ops apply then.
  ASSERT_OK(primary_->Commit(t));
  ASSERT_OK(replica_->SyncFrom(primary_->wal(), next, &next));
  EXPECT_EQ(replica_->ops_applied(), 1u);
  ExpectConverged();
}

TEST_F(ReplicaTest, InsertsReplicateAcrossGeometries) {
  WorkloadConfig wc;
  wc.insert_fraction = 0.4;
  WorkloadDriver driver(primary_.get(), wc);
  ASSERT_OK(driver.RunOps(400));
  Lsn next = kFirstLsn;
  ASSERT_OK(replica_->SyncFrom(primary_->wal(), kFirstLsn, &next));
  ExpectConverged();
  uint64_t rows = 0;
  ASSERT_OK(replica_->engine().dc().btree().CheckWellFormed(&rows));
}

TEST_F(ReplicaTest, ReplicaSurvivesItsOwnCrash) {
  WorkloadDriver driver(primary_.get(), WorkloadConfig{});
  ASSERT_OK(driver.RunOps(200));
  Lsn next = kFirstLsn;
  ASSERT_OK(replica_->SyncFrom(primary_->wal(), kFirstLsn, &next));
  // The replica is a full engine: crash it and recover logically.
  replica_->engine().SimulateCrash();
  RecoveryStats st;
  ASSERT_OK(replica_->engine().Recover(RecoveryMethod::kLog2, &st));
  ExpectConverged();
}

}  // namespace
}  // namespace deutero
