// Logical log shipping tests (paper §1.1): a replica with a DIFFERENT page
// geometry applies the primary's logical records and converges to identical
// logical content.
#include <gtest/gtest.h>

#include <memory>

#include "core/replica.h"
#include "test_util.h"
#include "workload/driver.h"

namespace deutero {
namespace {

using testing_util::SmallOptions;

class ReplicaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    primary_opts_ = SmallOptions();           // 1 KB pages
    replica_opts_ = SmallOptions();
    replica_opts_.page_size = 4096;           // different physical geometry
    replica_opts_.cache_pages = 32;
    ASSERT_OK(Engine::Open(primary_opts_, &primary_));
    ASSERT_OK(LogicalReplica::Open(replica_opts_, &replica_));
  }

  void ExpectConverged() {
    // Full logical comparison through both engines' scan paths.
    std::vector<std::pair<Key, std::string>> a, b;
    ASSERT_OK(primary_->dc().btree().ScanAll(
        [&](Key k, Slice v) { a.emplace_back(k, v.ToString()); }));
    ASSERT_OK(replica_->engine().dc().btree().ScanAll(
        [&](Key k, Slice v) { b.emplace_back(k, v.ToString()); }));
    EXPECT_EQ(a, b);
  }

  EngineOptions primary_opts_;
  EngineOptions replica_opts_;
  std::unique_ptr<Engine> primary_;
  std::unique_ptr<LogicalReplica> replica_;
};

TEST_F(ReplicaTest, CommittedTransactionsReplicate) {
  WorkloadDriver driver(primary_.get(), WorkloadConfig{});
  ASSERT_OK(driver.RunOps(300));
  Lsn next = kFirstLsn;
  ASSERT_OK(replica_->SyncFrom(primary_->wal(), kFirstLsn, &next));
  EXPECT_EQ(replica_->txns_applied(), driver.txns_committed());
  ExpectConverged();
}

TEST_F(ReplicaTest, IncrementalSyncResumesCleanly) {
  WorkloadDriver driver(primary_.get(), WorkloadConfig{});
  Lsn next = kFirstLsn;
  for (int round = 0; round < 5; round++) {
    ASSERT_OK(driver.RunOps(100));
    ASSERT_OK(replica_->SyncFrom(primary_->wal(), next, &next));
  }
  ExpectConverged();
}

TEST_F(ReplicaTest, AbortedTransactionsAreNotApplied) {
  TxnId t;
  ASSERT_OK(primary_->Begin(&t));
  ASSERT_OK(primary_->Update(
      t, 7, SynthesizeValueString(7, 1, primary_opts_.value_size)));
  ASSERT_OK(primary_->Abort(t));
  Lsn next = kFirstLsn;
  ASSERT_OK(replica_->SyncFrom(primary_->wal(), kFirstLsn, &next));
  EXPECT_EQ(replica_->txns_applied(), 0u);
  std::string v;
  ASSERT_OK(replica_->Read(7, &v));
  EXPECT_EQ(v, SynthesizeValueString(7, 0, primary_opts_.value_size));
}

TEST_F(ReplicaTest, UncommittedTailStaysBuffered) {
  TxnId t;
  ASSERT_OK(primary_->Begin(&t));
  ASSERT_OK(primary_->Update(
      t, 9, SynthesizeValueString(9, 1, primary_opts_.value_size)));
  primary_->tc().ForceLog();
  Lsn next = kFirstLsn;
  ASSERT_OK(replica_->SyncFrom(primary_->wal(), kFirstLsn, &next));
  EXPECT_EQ(replica_->ops_applied(), 0u);
  // Commit arrives in the next batch; the buffered ops apply then.
  ASSERT_OK(primary_->Commit(t));
  ASSERT_OK(replica_->SyncFrom(primary_->wal(), next, &next));
  EXPECT_EQ(replica_->ops_applied(), 1u);
  ExpectConverged();
}

TEST_F(ReplicaTest, InsertsReplicateAcrossGeometries) {
  WorkloadConfig wc;
  wc.insert_fraction = 0.4;
  WorkloadDriver driver(primary_.get(), wc);
  ASSERT_OK(driver.RunOps(400));
  Lsn next = kFirstLsn;
  ASSERT_OK(replica_->SyncFrom(primary_->wal(), kFirstLsn, &next));
  ExpectConverged();
  uint64_t rows = 0;
  ASSERT_OK(replica_->engine().dc().btree().CheckWellFormed(&rows));
}

TEST_F(ReplicaTest, ReplicaSurvivesItsOwnCrash) {
  WorkloadDriver driver(primary_.get(), WorkloadConfig{});
  ASSERT_OK(driver.RunOps(200));
  Lsn next = kFirstLsn;
  ASSERT_OK(replica_->SyncFrom(primary_->wal(), kFirstLsn, &next));
  // The replica is a full engine: crash it and recover logically.
  replica_->engine().SimulateCrash();
  RecoveryStats st;
  ASSERT_OK(replica_->engine().Recover(RecoveryMethod::kLog2, &st));
  ExpectConverged();
}

// ---- hot-standby surface: channel, pump, lag, gating, failover ----

TEST(ReplicationChannelTest, PublishPullBoundsAndStats) {
  std::unique_ptr<Engine> primary;
  ASSERT_OK(Engine::Open(SmallOptions(), &primary));
  WorkloadDriver driver(primary.get(), WorkloadConfig{});
  ASSERT_OK(driver.RunOps(100));

  ReplicationChannel channel;
  EXPECT_EQ(channel.published_end(), kFirstLsn);  // only the LSN-0 pad
  channel.Publish(*primary);
  const Lsn end1 = channel.published_end();
  EXPECT_GT(end1, kFirstLsn);
  EXPECT_EQ(channel.published_txns(), primary->tc().stats().committed);

  // Re-publishing with no new stable bytes is a no-op on the byte stream.
  channel.Publish(*primary);
  EXPECT_EQ(channel.published_end(), end1);

  // Pulls are bounded, byte-exact against the primary's own stable log,
  // and return 0 once the puller is caught up.
  std::string chunk;
  Lsn at = kFirstLsn;
  size_t pulled_total = 0;
  while (true) {
    const size_t n = channel.Pull(at, 512, &chunk);
    if (n == 0) break;
    EXPECT_LE(n, 512u);
    const Slice stable = primary->wal().StableBytes(at);
    ASSERT_GE(stable.size(), n);
    EXPECT_EQ(std::string(stable.data(), n), chunk);
    at += n;
    pulled_total += n;
  }
  EXPECT_EQ(at, end1);
  EXPECT_EQ(channel.Pull(end1, 512, &chunk), 0u);

  // Published bytes survive a primary crash — the channel is stable media.
  primary->SimulateCrash();
  channel.Publish(*primary);
  EXPECT_GE(channel.published_end(), end1);

  const ReplicationChannel::Stats cs = channel.stats();
  EXPECT_EQ(cs.published_end, channel.published_end());
  EXPECT_EQ(cs.publishes, 3u);
  EXPECT_GT(cs.chunks_pulled, 1u);
  EXPECT_EQ(cs.bytes_pulled, pulled_total);
}

// Delete-heavy churn plus a contiguous range delete: the primary runs its
// own merges (1 KB leaves), the 4 KB standby must run ITS OWN delete-side
// SMOs locally — and both sides end with zero empty leaves and identical
// exact row counts.
TEST_F(ReplicaTest, DeleteHeavyMergeChurnConvergesCrossGeometry) {
  ReplicationChannel channel;
  WorkloadConfig wc;
  wc.insert_fraction = 0.15;
  wc.delete_fraction = 0.35;
  WorkloadDriver driver(primary_.get(), wc);
  for (int round = 0; round < 4; round++) {
    ASSERT_OK(driver.RunOps(150));
    channel.Publish(*primary_);
    ASSERT_OK(replica_->Pump(&channel, 4096));
  }

  // Drain whole key ranges so leaves empty out on BOTH geometries (a 4 KB
  // leaf holds ~4x more rows than a 1 KB one). The driver may already have
  // deleted some of these keys — only NotFound is acceptable then.
  Table table;
  ASSERT_OK(primary_->OpenDefaultTable(&table));
  for (Key lo = 500; lo < 2500; lo += 50) {
    Txn txn;
    ASSERT_OK(primary_->Begin(&txn));
    for (Key k = lo; k < lo + 50; k++) {
      const Status s = txn.Delete(table, k);
      ASSERT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
    }
    ASSERT_OK(txn.Commit());
  }
  channel.Publish(*primary_);
  ASSERT_OK(replica_->Pump(&channel, 4096));

  ExpectConverged();
  uint64_t scan_rows = 0;
  ASSERT_OK(primary_->dc().btree().ScanAll([&](Key, Slice) { scan_rows++; }));
  const struct {
    Engine* engine;
    const char* who;
  } sides[2] = {{primary_.get(), "primary"}, {&replica_->engine(), "standby"}};
  for (const auto& side : sides) {
    SCOPED_TRACE(side.who);
    BTree& tree = side.engine->dc().btree();
    EXPECT_EQ(tree.row_count(), scan_rows);
    uint64_t wf_rows = 0;
    ASSERT_OK(tree.CheckWellFormed(&wf_rows));
    EXPECT_EQ(wf_rows, scan_rows);
    uint64_t empty = 0;
    ASSERT_OK(tree.CountEmptyLeaves(&empty));
    EXPECT_EQ(empty, 0u);
  }
  EXPECT_GT(replica_->stats().standby_merges, 0u)
      << "the standby never exercised its local delete-side SMO path";
}

TEST_F(ReplicaTest, PumpChunkProgressAndLagStats) {
  ReplicationChannel channel;
  WorkloadDriver driver(primary_.get(), WorkloadConfig{});
  ASSERT_OK(driver.RunOps(200));
  channel.Publish(*primary_);

  // Mid-catch-up the standby reports real lag...
  bool progressed = false;
  ASSERT_OK(replica_->PumpChunk(&channel, 512, &progressed));
  EXPECT_TRUE(progressed);
  const ReplicationStats mid = replica_->stats();
  EXPECT_EQ(mid.published_end, channel.published_end());
  EXPECT_GT(mid.lsn_lag, 0u);
  EXPECT_GT(mid.txn_lag, 0u);

  // ...and at catch-up both lags collapse to zero, the applied boundary
  // sits exactly at the published end, and progress goes quiet.
  while (progressed) {
    ASSERT_OK(replica_->PumpChunk(&channel, 512, &progressed));
  }
  const ReplicationStats done = replica_->stats();
  EXPECT_EQ(done.applied_boundary, channel.published_end());
  EXPECT_EQ(done.shipped_end, channel.published_end());
  EXPECT_EQ(done.lsn_lag, 0u);
  EXPECT_EQ(done.txn_lag, 0u);
  EXPECT_EQ(done.txns_applied, driver.txns_committed());
  EXPECT_GT(done.chunks_shipped, 1u);
  EXPECT_GT(done.bytes_shipped, 0u);
  ExpectConverged();
}

TEST_F(ReplicaTest, SnapshotReadsGateAtShipBoundary) {
  ReplicationChannel channel;
  const TableId table = primary_opts_.table_id;
  const std::string v0 = SynthesizeValueString(5, 0, primary_opts_.value_size);
  const std::string v1 = SynthesizeValueString(5, 1, primary_opts_.value_size);

  channel.Publish(*primary_);
  ASSERT_OK(replica_->Pump(&channel));
  const Lsn boundary0 = replica_->read_boundary();

  TxnId t;
  ASSERT_OK(primary_->Begin(&t));
  ASSERT_OK(primary_->Update(t, 5, v1));
  ASSERT_OK(primary_->Commit(t));
  channel.Publish(*primary_);

  // Published but not pumped: the read gate still sits at the old
  // boundary, so the committed update is invisible to standby readers.
  std::string got;
  ASSERT_OK(replica_->SnapshotRead(table, 5, &got));
  EXPECT_EQ(got, v0);
  EXPECT_EQ(replica_->read_boundary(), boundary0);

  ASSERT_OK(replica_->Pump(&channel));
  ASSERT_OK(replica_->SnapshotRead(table, 5, &got));
  EXPECT_EQ(got, v1);
  EXPECT_GT(replica_->read_boundary(), boundary0);
  EXPECT_EQ(replica_->read_boundary(), channel.published_end());
}

TEST_F(ReplicaTest, PromoteAtCleanBoundaryAcceptsWrites) {
  ReplicationChannel channel;
  WorkloadDriver driver(primary_.get(), WorkloadConfig{});
  ASSERT_OK(driver.RunOps(150));
  channel.Publish(*primary_);
  ASSERT_OK(replica_->Pump(&channel));

  // A standby refuses external writes...
  TxnId t;
  EXPECT_FALSE(replica_->engine().Begin(&t).ok());
  EXPECT_FALSE(replica_->promoted());

  ASSERT_OK(replica_->Promote(RecoveryMethod::kLog2));
  EXPECT_TRUE(replica_->promoted());
  ExpectConverged();

  // ...and a promoted one leads: it takes writes and ships a complete WAL
  // of its own to the next generation's standby.
  const std::string v =
      SynthesizeValueString(11, 9, primary_opts_.value_size);
  ASSERT_OK(replica_->engine().Begin(&t));
  ASSERT_OK(replica_->engine().Update(t, 11, v));
  ASSERT_OK(replica_->engine().Commit(t));
  std::string got;
  ASSERT_OK(replica_->Read(11, &got));
  EXPECT_EQ(got, v);

  // Pumping a promoted standby is a refused operation, not a crash.
  bool progressed = false;
  EXPECT_FALSE(replica_->PumpChunk(&channel, 512, &progressed).ok());
}

TEST_F(ReplicaTest, StandbyCrashMidChunkResumesFromCursor) {
  ReplicationChannel channel;
  WorkloadDriver driver(primary_.get(), WorkloadConfig{});
  ASSERT_OK(driver.RunOps(200));
  channel.Publish(*primary_);

  // Die mid-chunk: a few ops into the apply, with the current replay
  // transaction open. Further pumps are refused until crash + recover.
  replica_->InjectApplyStopForTest(7);
  ASSERT_OK(replica_->Pump(&channel));
  bool progressed = false;
  EXPECT_FALSE(replica_->PumpChunk(&channel, 512, &progressed).ok());

  replica_->CrashStandby();
  ASSERT_OK(replica_->RecoverStandby(RecoveryMethod::kLog1));

  // The durable cursor says where to resume; nothing is double-applied
  // and nothing is lost. New primary work after the standby outage ships
  // and applies too.
  ASSERT_OK(driver.RunOps(100));
  channel.Publish(*primary_);
  ASSERT_OK(replica_->Pump(&channel));
  ExpectConverged();
  EXPECT_EQ(replica_->stats().applied_boundary, channel.published_end());
}

}  // namespace
}  // namespace deutero
