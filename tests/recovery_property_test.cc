// Property-based recovery tests:
//  * Correctness under randomized crash points and workloads, for every
//    method (parameterized sweep).
//  * DPT safety (§3): the constructed DPT contains every page that truly
//    needs redo, and every rLSN is a sound lower bound.
//  * Method equivalence: all five methods produce byte-identical table
//    content from the same crash image.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/engine.h"
#include "recovery/analysis.h"
#include "storage/page.h"
#include "test_util.h"
#include "workload/driver.h"
#include "workload/experiment.h"

namespace deutero {
namespace {

using testing_util::SmallOptions;

// ---------------------------------------------------------------------------
// Recovery passes are self-quiescing: driving one directly (as these tests
// do) with the dirty monitor and pool callbacks still enabled must not let
// redo-time MarkDirty emit Δ/BW records into the log being scanned — that
// would both corrupt the recovery log and invalidate the scan's zero-copy
// views mid-record.
// ---------------------------------------------------------------------------

TEST(RecoveryPassQuiescenceTest, DcPassWithLiveMonitorAppendsNothing) {
  EngineOptions o = SmallOptions();
  o.seed = 7;
  o.delta_dirty_capacity = 2;  // hair-trigger Δ emission
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(o, &e));
  WorkloadConfig wc;
  wc.insert_fraction = 0.5;  // force SMOs so the DC pass redoes page images
  WorkloadDriver driver(e.get(), wc);
  ASSERT_OK(driver.RunOps(300));
  ASSERT_OK(e->Checkpoint());
  ASSERT_OK(driver.RunOps(300));
  driver.OnCrash();
  e->SimulateCrash();

  ASSERT_OK(e->dc().OpenDatabase());
  ASSERT_TRUE(e->dc().monitor().enabled());  // deliberately NOT disabled
  ASSERT_TRUE(e->dc().pool().callbacks_enabled());
  const Lsn log_end_before = e->wal().next_lsn();
  DcRecoveryResult dcr;
  ASSERT_OK(RunDcRecovery(&e->wal(), &e->dc(), e->wal().master().bckpt_lsn,
                          o.dpt_mode, /*build_dpt=*/true, /*preload=*/false,
                          &dcr));
  EXPECT_GT(dcr.smo_redone, 0u) << "workload produced no SMOs to redo";
  EXPECT_EQ(e->wal().next_lsn(), log_end_before)
      << "the DC pass appended to the log it was scanning";
  // The guard restores the caller's instrumentation state.
  EXPECT_TRUE(e->dc().monitor().enabled());
  EXPECT_TRUE(e->dc().pool().callbacks_enabled());
}

// ---------------------------------------------------------------------------
// Randomized crash-point sweep: (seed, method) matrix.
// ---------------------------------------------------------------------------

class CrashPointSweep
    : public ::testing::TestWithParam<std::tuple<int, RecoveryMethod>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrashPointSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(RecoveryMethod::kLog0,
                                         RecoveryMethod::kLog1,
                                         RecoveryMethod::kLog2,
                                         RecoveryMethod::kSql1,
                                         RecoveryMethod::kSql2)),
    [](const auto& param_info) {
      return std::string("seed") + std::to_string(std::get<0>(param_info.param)) +
             "_" + RecoveryMethodName(std::get<1>(param_info.param));
    });

TEST_P(CrashPointSweep, RandomizedCrashRecoversCommittedState) {
  const int seed = std::get<0>(GetParam());
  const RecoveryMethod method = std::get<1>(GetParam());

  EngineOptions o = SmallOptions();
  o.seed = seed;
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(o, &e));
  WorkloadConfig wc;
  wc.seed = seed * 101;
  wc.insert_fraction = seed % 2 == 0 ? 0.15 : 0.0;  // half the seeds do SMOs
  wc.delete_fraction = seed % 2 == 1 ? 0.10 : 0.0;  // the others do deletes
  wc.scan_fraction = 0.05;                          // everyone scans a bit
  WorkloadDriver driver(e.get(), wc);

  Random rng(seed * 7919);
  // Random activity with random checkpoints, then a random crash point.
  const int phases = 2 + static_cast<int>(rng.Uniform(3));
  for (int p = 0; p < phases; p++) {
    ASSERT_OK(driver.RunOps(100 + rng.Uniform(400)));
    if (rng.Bernoulli(0.7)) ASSERT_OK(e->Checkpoint());
  }
  if (rng.Bernoulli(0.5)) {
    ASSERT_OK(driver.RunOpsNoCommit(1 + rng.Uniform(9)));
    e->tc().ForceLog();
  }

  driver.OnCrash();
  e->SimulateCrash();
  RecoveryStats st;
  ASSERT_OK(e->Recover(method, &st));

  uint64_t checked = 0;
  ASSERT_OK(driver.Verify(0, &checked));
  EXPECT_GT(checked, 0u);
  uint64_t rows = 0;
  ASSERT_OK(e->dc().btree().CheckWellFormed(&rows));
}

// ---------------------------------------------------------------------------
// Delete-heavy sweep: 50% deletes over long horizons so leaf merges (and
// their recovery paths — CLR upserts into merged-away leaves, fence memos
// over a merged tree, sibling-chain scans) are exercised at every thread
// count. Each (seed, method) cell recovers the same crash image at
// recovery_threads 1, 2, 4 and 8 and must satisfy the oracle each time.
// ---------------------------------------------------------------------------

class DeleteHeavySweep
    : public ::testing::TestWithParam<std::tuple<int, RecoveryMethod>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeleteHeavySweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(RecoveryMethod::kLog0,
                                         RecoveryMethod::kLog1,
                                         RecoveryMethod::kLog2,
                                         RecoveryMethod::kSql1,
                                         RecoveryMethod::kSql2)),
    [](const auto& param_info) {
      return std::string("seed") +
             std::to_string(std::get<0>(param_info.param)) + "_" +
             RecoveryMethodName(std::get<1>(param_info.param));
    });

TEST_P(DeleteHeavySweep, HalfDeleteChurnRecoversAtEveryThreadCount) {
  const int seed = std::get<0>(GetParam());
  const RecoveryMethod method = std::get<1>(GetParam());

  EngineOptions o = SmallOptions();
  o.num_rows = 600;  // churn dense enough to drain (and merge) leaves
  o.seed = seed;
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(o, &e));
  WorkloadConfig wc;
  wc.seed = seed * 577;
  wc.delete_fraction = 0.55;
  wc.insert_fraction = 0.05;
  wc.scan_fraction = 0.05;
  WorkloadDriver driver(e.get(), wc);

  Random rng(seed * 6151);
  for (int p = 0; p < 3; p++) {
    ASSERT_OK(driver.RunOps(800 + rng.Uniform(600)));
    if (rng.Bernoulli(0.7)) ASSERT_OK(e->Checkpoint());
  }
  ASSERT_OK(driver.RunOpsNoCommit(1 + rng.Uniform(9)));
  e->tc().ForceLog();
  driver.OnCrash();
  e->SimulateCrash();
  ASSERT_GT(e->wal().stats().by_type[static_cast<size_t>(
                LogRecordType::kSmoMerge)],
            0u)
      << "the churn produced no merge SMOs: the sweep is vacuous";

  Engine::StableSnapshot snap;
  ASSERT_OK(e->TakeStableSnapshot(&snap));

  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    EngineOptions ot = o;
    ot.recovery_threads = threads;
    std::unique_ptr<Engine> et;
    ASSERT_OK(Engine::Open(ot, &et));
    et->SimulateCrash();
    ASSERT_OK(et->RestoreStableSnapshot(snap));
    RecoveryStats st;
    ASSERT_OK(et->Recover(method, &st));

    // Point the driver's oracle at the recovered engine.
    ASSERT_OK(driver.AttachEngine(et.get()));
    uint64_t checked = 0;
    ASSERT_OK(driver.Verify(0, &checked));
    EXPECT_GT(checked, 0u);
    uint64_t rows = 0;
    ASSERT_OK(et->dc().btree().CheckWellFormed(&rows));
    EXPECT_EQ(et->dc().btree().row_count(), rows) << threads << " threads";
    // The scan surface over the churned space must agree with the oracle
    // too (sibling-chain correctness after merges).
    uint64_t seen = 0;
    ASSERT_OK(driver.VerifyScan(0, o.num_rows - 1, &seen));
  }
}

// ---------------------------------------------------------------------------
// DPT safety property.
// ---------------------------------------------------------------------------

struct DptSafetyCase {
  DptMode mode;
  const char* name;
};

class DptSafetyTest : public ::testing::TestWithParam<DptMode> {};

INSTANTIATE_TEST_SUITE_P(Modes, DptSafetyTest,
                         ::testing::Values(DptMode::kStandard,
                                           DptMode::kPerfect,
                                           DptMode::kReduced),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case DptMode::kStandard:
                               return "Standard";
                             case DptMode::kPerfect:
                               return "Perfect";
                             case DptMode::kReduced:
                               return "Reduced";
                           }
                           return "?";
                         });

// After a crash, replay ground truth from the log: a page truly needs redo
// iff some data operation targeted it (by its logged PID) with
// LSN > the page's stable pLSN. Every such page within the Δ-covered prefix
// must appear in the logical DPT with rlsn <= that LSN.
TEST_P(DptSafetyTest, DptCoversEveryPageNeedingRedo) {
  EngineOptions o = SmallOptions();
  o.dpt_mode = GetParam();
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(o, &e));
  WorkloadDriver driver(e.get(), WorkloadConfig{});
  ASSERT_OK(driver.RunOps(400));
  ASSERT_OK(e->Checkpoint());
  ASSERT_OK(driver.RunOps(500));
  e->dc().monitor().ForceEmit();
  ASSERT_OK(driver.RunOps(50));  // tail
  driver.OnCrash();
  e->SimulateCrash();

  // Build the logical DPT exactly as Log1 recovery would.
  ASSERT_OK(e->dc().OpenDatabase());
  const Lsn start = e->wal().master().bckpt_lsn;
  DcRecoveryResult dcr;
  ASSERT_OK(RunDcRecovery(&e->wal(), &e->dc(), start, o.dpt_mode,
                          /*build_dpt=*/true, /*preload=*/false, &dcr));
  ASSERT_GT(dcr.dpt.size(), 0u);
  ASSERT_NE(dcr.last_delta_tc_lsn, kInvalidLsn);

  // Ground truth from the stable log + stable page images.
  uint64_t covered = 0;
  for (auto it = e->wal().NewIterator(start, false); it.Valid(); it.Next()) {
    const LogRecordView& rec = it.record();
    if (!rec.IsRedoableDataOp()) continue;
    if (rec.lsn >= dcr.last_delta_tc_lsn) continue;  // tail: DPT not liable
    std::vector<uint8_t> img(o.page_size);
    e->dc().disk().ReadImage(rec.pid, img.data());
    const Lsn plsn = PageView(img.data(), o.page_size).plsn();
    if (plsn >= rec.lsn) continue;  // effects already stable: no redo needed
    const DirtyPageTable::Entry* entry = dcr.dpt.Find(rec.pid);
    ASSERT_NE(entry, nullptr)
        << "page " << rec.pid << " needs redo of lsn " << rec.lsn
        << " but is missing from the DPT (plsn " << plsn << ")";
    EXPECT_LE(entry->rlsn, rec.lsn)
        << "rLSN not conservative for page " << rec.pid;
    covered++;
  }
  EXPECT_GT(covered, 0u);
}

// The SQL DPT obeys the same safety property (Algorithm 3).
TEST(SqlDptSafety, DptCoversEveryPageNeedingRedo) {
  EngineOptions o = SmallOptions();
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(o, &e));
  WorkloadDriver driver(e.get(), WorkloadConfig{});
  ASSERT_OK(driver.RunOps(400));
  ASSERT_OK(e->Checkpoint());
  ASSERT_OK(driver.RunOps(500));
  driver.OnCrash();
  e->SimulateCrash();

  ASSERT_OK(e->dc().OpenDatabase());
  const Lsn start = e->wal().master().bckpt_lsn;
  SqlAnalysisResult ar;
  ASSERT_OK(RunSqlAnalysis(&e->wal(), start, &ar));

  uint64_t covered = 0;
  for (auto it = e->wal().NewIterator(start, false); it.Valid(); it.Next()) {
    const LogRecordView& rec = it.record();
    if (!rec.IsRedoableDataOp()) continue;
    std::vector<uint8_t> img(o.page_size);
    e->dc().disk().ReadImage(rec.pid, img.data());
    const Lsn plsn = PageView(img.data(), o.page_size).plsn();
    if (plsn >= rec.lsn) continue;
    const DirtyPageTable::Entry* entry = ar.dpt.Find(rec.pid);
    ASSERT_NE(entry, nullptr) << "page " << rec.pid;
    EXPECT_LE(entry->rlsn, rec.lsn);
    covered++;
  }
  EXPECT_GT(covered, 0u);
}

// ---------------------------------------------------------------------------
// Cross-method equivalence.
// ---------------------------------------------------------------------------

TEST(MethodEquivalence, AllMethodsYieldIdenticalTableContent) {
  SideBySideConfig cfg;
  cfg.engine = SmallOptions();
  cfg.scenario.checkpoints = 2;
  cfg.scenario.uncommitted_tail_ops = 7;
  cfg.verify = false;  // we compare contents across methods instead

  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(cfg.engine, &e));
  WorkloadDriver driver(e.get(), cfg.workload);
  ScenarioOutcome so;
  ASSERT_OK(RunCrashScenario(e.get(), &driver, cfg.scenario, &so));
  Engine::StableSnapshot snap;
  ASSERT_OK(e->TakeStableSnapshot(&snap));

  std::vector<std::string> contents;
  for (RecoveryMethod m : cfg.methods) {
    ASSERT_OK(e->RestoreStableSnapshot(snap));
    RecoveryStats st;
    ASSERT_OK(e->Recover(m, &st));
    std::string digest;
    ASSERT_OK(e->dc().btree().ScanAll([&](Key k, Slice v) {
      digest.append(reinterpret_cast<const char*>(&k), sizeof(k));
      digest.append(v.data(), v.size());
    }));
    contents.push_back(std::move(digest));
    e->SimulateCrash();
  }
  for (size_t i = 1; i < contents.size(); i++) {
    EXPECT_EQ(contents[0], contents[i])
        << "method " << RecoveryMethodName(cfg.methods[i])
        << " diverged from " << RecoveryMethodName(cfg.methods[0]);
  }
}

// The new-surface equivalence demanded by the Delete/Scan/WriteBatch
// redesign: a crash image containing committed deletes, committed batches,
// and an uncommitted loser full of deletes (undo must re-insert) recovers
// to byte-identical B-tree content — and identical Scan results — under
// every method.
TEST(MethodEquivalence, DeleteScanBatchRecoverIdenticallyEverywhere) {
  EngineOptions o = SmallOptions();
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(o, &e));
  Table table;
  ASSERT_OK(e->OpenDefaultTable(&table));
  WorkloadConfig wc;
  wc.insert_fraction = 0.10;
  wc.delete_fraction = 0.15;
  wc.scan_fraction = 0.05;
  WorkloadDriver driver(e.get(), wc);

  // Dedicated keys for the manual batch/loser ops, far above anything the
  // driver's oracle tracks (its fresh inserts start at num_rows).
  const uint32_t vs = o.value_size;
  const Key base = o.num_rows + 6000;
  {
    Txn setup;
    ASSERT_OK(e->Begin(&setup));
    for (Key k = base; k <= base + 12; k++) {
      ASSERT_OK(setup.Insert(table, k, SynthesizeValueString(k, 1, vs)));
    }
    ASSERT_OK(setup.Commit());
  }

  ASSERT_OK(driver.RunOps(400));
  ASSERT_OK(e->Checkpoint());
  ASSERT_OK(driver.RunOps(400));

  // A committed WriteBatch after the checkpoint (inside the redone window).
  WriteBatch batch;
  batch.Update(base, SynthesizeValueString(base, 77, vs));
  batch.Delete(base + 1);
  batch.Insert(base + 20, SynthesizeValueString(base + 20, 1, vs));
  ASSERT_OK(e->Apply(table, batch));

  // An uncommitted loser whose log reaches stable storage: deletes and an
  // update, so undo must re-insert and restore across every method.
  Txn loser;
  ASSERT_OK(e->Begin(&loser));
  ASSERT_OK(loser.Delete(table, base + 10));
  ASSERT_OK(loser.Delete(table, base + 11));
  ASSERT_OK(loser.Update(table, base + 12,
                         SynthesizeValueString(base + 12, 88, vs)));
  e->tc().ForceLog();
  loser.Release();
  driver.OnCrash();
  e->SimulateCrash();

  Engine::StableSnapshot snap;
  ASSERT_OK(e->TakeStableSnapshot(&snap));

  const RecoveryMethod methods[] = {RecoveryMethod::kLog0,
                                    RecoveryMethod::kLog1,
                                    RecoveryMethod::kLog2,
                                    RecoveryMethod::kSql1,
                                    RecoveryMethod::kSql2};
  std::vector<std::string> contents;
  std::vector<std::string> scans;
  for (RecoveryMethod m : methods) {
    ASSERT_OK(e->RestoreStableSnapshot(snap));
    RecoveryStats st;
    ASSERT_OK(e->Recover(m, &st));
    uint64_t checked = 0;
    ASSERT_OK(driver.Verify(0, &checked));  // oracle agrees per method
    std::string digest;
    ASSERT_OK(e->dc().btree().ScanAll([&](Key k, Slice v) {
      digest.append(reinterpret_cast<const char*>(&k), sizeof(k));
      digest.append(v.data(), v.size());
    }));
    contents.push_back(std::move(digest));
    // The Scan surface must agree too (cursor over a key range).
    std::string scan_digest;
    ScanCursor c;
    ASSERT_OK(table.Scan(0, 100, &c));
    while (c.Valid()) {
      const Key k = c.key();
      scan_digest.append(reinterpret_cast<const char*>(&k), sizeof(k));
      scan_digest.append(c.value().data(), c.value().size());
      ASSERT_OK(c.Next());
    }
    scans.push_back(std::move(scan_digest));
    uint64_t rows = 0;
    ASSERT_OK(e->dc().btree().CheckWellFormed(&rows));
    e->SimulateCrash();
  }
  for (size_t i = 1; i < contents.size(); i++) {
    EXPECT_EQ(contents[0], contents[i])
        << RecoveryMethodName(methods[i]) << " table content diverged";
    EXPECT_EQ(scans[0], scans[i])
        << RecoveryMethodName(methods[i]) << " scan results diverged";
  }
  // The batch's effects are durable; the loser's were rolled back.
  {
    ASSERT_OK(e->RestoreStableSnapshot(snap));
    RecoveryStats st;
    ASSERT_OK(e->Recover(RecoveryMethod::kLog2, &st));
  }
  std::string v;
  ASSERT_OK(table.Read(base, &v));
  EXPECT_EQ(v, SynthesizeValueString(base, 77, vs));
  EXPECT_TRUE(table.Read(base + 1, &v).IsNotFound());
  ASSERT_OK(table.Read(base + 20, &v));
  ASSERT_OK(table.Read(base + 10, &v));  // undo re-inserted
  ASSERT_OK(table.Read(base + 12, &v));
  EXPECT_EQ(v, SynthesizeValueString(base + 12, 1, vs));
}

// The FindLeaf memo is an optimization, not a semantics change: redo with
// and without it produces byte-identical content, and the memo absorbs the
// bulk of the traversals.
TEST(LeafMemoEquivalence, MemoOnAndOffProduceIdenticalContent) {
  std::string digests[2];
  uint64_t hits[2] = {0, 0};
  for (int memo = 0; memo < 2; memo++) {
    EngineOptions o = SmallOptions();
    o.redo_leaf_memo = memo == 1;
    std::unique_ptr<Engine> e;
    ASSERT_OK(Engine::Open(o, &e));
    WorkloadConfig wc;
    wc.insert_fraction = 0.1;
    wc.delete_fraction = 0.1;
    WorkloadDriver driver(e.get(), wc);
    ASSERT_OK(driver.RunOps(300));
    ASSERT_OK(e->Checkpoint());
    ASSERT_OK(driver.RunOps(500));
    driver.OnCrash();
    e->SimulateCrash();
    RecoveryStats st;
    ASSERT_OK(e->Recover(RecoveryMethod::kLog1, &st));
    hits[memo] = st.redo_leaf_memo_hits;
    uint64_t checked = 0;
    ASSERT_OK(driver.Verify(0, &checked));
    ASSERT_OK(e->dc().btree().ScanAll([&](Key k, Slice v) {
      digests[memo].append(reinterpret_cast<const char*>(&k), sizeof(k));
      digests[memo].append(v.data(), v.size());
    }));
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(hits[0], 0u);
  EXPECT_GT(hits[1], 0u);
}

// Determinism: the same seed produces the same recovery timings and stats.
TEST(Determinism, IdenticalSeedsGiveIdenticalRuns) {
  auto run = [] {
    SideBySideConfig cfg;
    cfg.engine = SmallOptions();
    cfg.scenario.checkpoints = 2;
    cfg.verify = false;
    SideBySideResult r;
    EXPECT_TRUE(RunSideBySide(cfg, &r).ok());
    return r;
  };
  const SideBySideResult a = run();
  const SideBySideResult b = run();
  ASSERT_EQ(a.methods.size(), b.methods.size());
  for (size_t i = 0; i < a.methods.size(); i++) {
    EXPECT_DOUBLE_EQ(a.methods[i].stats.total_ms, b.methods[i].stats.total_ms);
    EXPECT_EQ(a.methods[i].stats.data_page_fetches,
              b.methods[i].stats.data_page_fetches);
    EXPECT_EQ(a.methods[i].stats.dpt_size, b.methods[i].stats.dpt_size);
  }
}

}  // namespace
}  // namespace deutero
