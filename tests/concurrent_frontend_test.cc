// Concurrent transaction front end (PR 8): atomic log-space reservation,
// the group-commit batcher, the sharded lock manager, and the N-writer
// crash storm. The storm is the acceptance test of the whole subsystem —
// four client threads produce ONE interleaved log through group commit,
// the engine crashes mid-flight, and the crash image must recover
// byte-identically under all five methods × recovery_threads {1,2,4}.
//
// Everything here is real-thread concurrent; the suite is part of the TSan
// CI job, so any data race in the front end fails the build twice over.
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "concurrency/group_commit.h"
#include "concurrency/sharded_lock_manager.h"
#include "core/engine.h"
#include "gtest/gtest.h"
#include "sim/clock.h"
#include "tc/lock_manager.h"
#include "test_util.h"
#include "wal/log_manager.h"
#include "workload/concurrent_driver.h"
#include "workload/crash_storm.h"

namespace deutero {
namespace {

using testing_util::SmallOptions;

// ---- atomic log-space reservation ----

// A reservation that parks mid-encode is a hole: later windows fill and
// retire around it, but neither the all-filled-through mark nor the stable
// prefix may ever pass the hole's start — a flushed prefix with a hole in
// it would replay garbage after a crash.
TEST(LogReservationTest, ParkedHolePinsTheStablePrefix) {
  SimClock clock;
  LogManager log(&clock, 1024, 0.0);
  const Lsn start = log.filled_through();

  // Park one reservation (the hole), then let four threads append two
  // hundred fully-published records each at higher LSNs.
  LogManager::Reservation hole = log.Reserve(LogRecordType::kTxnCommit, 8);
  ASSERT_EQ(hole.lsn, start);
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; t++) {
    writers.emplace_back([&log] {
      const std::string payload(24, 'x');
      for (int i = 0; i < 200; i++) {
        LogManager::Reservation r = log.Reserve(
            LogRecordType::kUpdate,
            static_cast<uint32_t>(payload.size()));
        if ((i & 7) == 0) std::this_thread::yield();  // stagger publishes
        log.Publish(r, payload.data());
      }
    });
  }
  for (auto& th : writers) th.join();

  // Every later window is filled; the hole still pins both marks.
  EXPECT_EQ(log.filled_through(), hole.lsn);
  log.Flush();
  EXPECT_EQ(log.stable_end(), hole.lsn);

  // Publishing the hole releases the whole contiguous prefix at once.
  const std::string fill(8, 'h');
  log.Publish(hole, fill.data());
  EXPECT_GT(log.filled_through(), hole.lsn);
  log.Flush();
  EXPECT_EQ(log.stable_end(), log.filled_through());
}

// Many threads reserving, encoding, and publishing concurrently while an
// observer hammers filled_through()/Flush(): the filled mark must be
// monotone and the stable prefix must never pass it.
TEST(LogReservationTest, ReservationTortureKeepsMarksMonotone) {
  SimClock clock;
  LogManager log(&clock, 1024, 0.0);

  std::atomic<bool> stop{false};
  std::thread observer([&] {
    Lsn prev_filled = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const Lsn f = log.filled_through();
      EXPECT_GE(f, prev_filled) << "all-filled-through mark regressed";
      prev_filled = f;
      log.Flush();
      EXPECT_LE(log.stable_end(), log.filled_through())
          << "stable prefix passed the filled mark (hole exposed)";
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < 8; t++) {
    writers.emplace_back([&log, t] {
      for (int i = 0; i < 300; i++) {
        // Vary the payload size so windows interleave unevenly.
        const std::string payload(1 + ((t * 31 + i) % 57), 'a' + t);
        LogManager::Reservation r = log.Reserve(
            LogRecordType::kUpdate,
            static_cast<uint32_t>(payload.size()));
        if ((i % 11) == t) std::this_thread::yield();
        log.Publish(r, payload.data());
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_relaxed);
  observer.join();

  log.Flush();
  EXPECT_EQ(log.stable_end(), log.filled_through());
  EXPECT_EQ(log.stats().records_appended, 8u * 300u);
}

// ---- group-commit batcher ----

TEST(GroupCommitTest, BatchesConcurrentWaitersIntoFewFlushes) {
  std::atomic<Lsn> tail{0};
  std::atomic<Lsn> stable{0};
  std::atomic<uint64_t> flushes{0};
  GroupCommit gc(
      /*flush=*/[&] {
        flushes.fetch_add(1);
        stable.store(tail.load());
        return stable.load();
      },
      /*stable=*/[&] { return stable.load(); },
      /*window_us=*/5000, /*max_batch=*/64);
  gc.Start();

  constexpr int kThreads = 8;
  constexpr int kCommitsPerThread = 8;
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; t++) {
    clients.emplace_back([&] {
      for (int i = 0; i < kCommitsPerThread; i++) {
        const Lsn mine = tail.fetch_add(100) + 100;
        const Status st = gc.WaitDurable(mine);
        EXPECT_TRUE(st.ok()) << st.ToString();
      }
    });
  }
  for (auto& th : clients) th.join();
  gc.Stop();

  const GroupCommit::Stats s = gc.stats();
  EXPECT_EQ(s.enqueued, uint64_t{kThreads * kCommitsPerThread});
  // The batching win: one window flush covers many concurrent commits.
  EXPECT_LT(flushes.load(), uint64_t{kThreads * kCommitsPerThread});
  EXPECT_GT(s.max_batch_seen, 1u);
  EXPECT_GE(stable.load(), Lsn{kThreads * kCommitsPerThread * 100});
}

TEST(GroupCommitTest, MaxBatchClosesBeforeTheWindow) {
  std::atomic<Lsn> tail{0};
  std::atomic<Lsn> stable{0};
  GroupCommit gc(
      /*flush=*/[&] {
        stable.store(tail.load());
        return stable.load();
      },
      /*stable=*/[&] { return stable.load(); },
      /*window_us=*/2'000'000, /*max_batch=*/4);  // window absurdly long
  gc.Start();

  // 8 waiters against a 2-second window: only the size trigger can get
  // them durable before the suite timeout, so finishing promptly proves it.
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; t++) {
    clients.emplace_back([&] {
      const Lsn mine = tail.fetch_add(100) + 100;
      EXPECT_TRUE(gc.WaitDurable(mine).ok());
    });
  }
  for (auto& th : clients) th.join();
  gc.Stop();
  EXPECT_GE(gc.stats().size_triggered, 1u);
}

TEST(GroupCommitTest, CrashHaltFailsPendingWaitersWithAborted) {
  std::atomic<Lsn> stable{0};  // never advances: waiters can only crash out
  GroupCommit gc(
      /*flush=*/[&] { return stable.load(); },
      /*stable=*/[&] { return stable.load(); },
      /*window_us=*/100, /*max_batch=*/4);
  gc.Start();

  std::atomic<int> aborted{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; t++) {
    clients.emplace_back([&] {
      const Status st = gc.WaitDurable(1000);
      if (st.IsAborted()) aborted.fetch_add(1);
    });
  }
  // Give the waiters time to enqueue, then crash under them.
  while (gc.stats().enqueued < 4) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  gc.CrashHalt();
  for (auto& th : clients) th.join();
  EXPECT_EQ(aborted.load(), 4);

  // A crashed batcher refuses new waiters the same way.
  EXPECT_TRUE(gc.WaitDurable(2000).IsAborted());
}

// ---- sharded lock manager vs the serial one ----

TEST(ShardedLockTest, ConflictMatrixMatchesSerialManager) {
  using SM = ShardedLockManager::LockMode;
  using LM = LockManager::LockMode;
  const TableId table = 7;
  const Key key = 42;

  // Immediate-decision cases (grant / die) must agree with the serial
  // manager exactly. The requester is YOUNGER than the holder, so wait-die
  // also decides immediately (die), like the serial manager's Busy.
  struct Case {
    LM serial_held, serial_req;
    SM sharded_held, sharded_req;
    bool grant;
  };
  const Case cases[] = {
      {LM::kShared, LM::kShared, SM::kShared, SM::kShared, true},
      {LM::kShared, LM::kExclusive, SM::kShared, SM::kExclusive, false},
      {LM::kExclusive, LM::kShared, SM::kExclusive, SM::kShared, false},
      {LM::kExclusive, LM::kExclusive, SM::kExclusive, SM::kExclusive,
       false},
  };
  for (const Case& c : cases) {
    LockManager serial;
    ShardedLockManager sharded(16);
    ASSERT_TRUE(serial.Acquire(1, table, key, c.serial_held).ok());
    ASSERT_TRUE(sharded.Acquire(1, table, key, c.sharded_held).ok());
    const Status ss = serial.Acquire(2, table, key, c.serial_req);
    const Status cs = sharded.Acquire(2, table, key, c.sharded_req);
    EXPECT_EQ(ss.ok(), c.grant);
    EXPECT_EQ(cs.ok(), c.grant);
    if (!c.grant) {
      EXPECT_TRUE(ss.IsBusy());
      EXPECT_TRUE(cs.IsBusy());  // wait-die: the younger requester dies
    }
    // Re-acquire and release behave identically too.
    EXPECT_TRUE(serial.Acquire(1, table, key, c.serial_held).ok());
    EXPECT_TRUE(sharded.Acquire(1, table, key, c.sharded_held).ok());
    serial.ReleaseAll(1);
    sharded.ReleaseAll(1);
    serial.ReleaseAll(2);
    sharded.ReleaseAll(2);
    EXPECT_EQ(serial.total_locks(), 0u);
    EXPECT_EQ(sharded.total_locks(), 0u);
  }
}

TEST(ShardedLockTest, OlderRequesterWaitsForReleaseInsteadOfDying) {
  // The one intentional departure from the serial manager: an OLDER
  // requester blocks until the younger holder releases (wait-die keeps
  // the waits-for graph acyclic), instead of aborting.
  ShardedLockManager locks(16);
  ASSERT_TRUE(
      locks.Acquire(9, 1, 5, ShardedLockManager::LockMode::kExclusive).ok());

  std::atomic<bool> granted{false};
  std::thread older([&] {
    // Txn 3 is older than holder 9: it must wait, then win.
    const Status st =
        locks.Acquire(3, 1, 5, ShardedLockManager::LockMode::kExclusive);
    EXPECT_TRUE(st.ok()) << st.ToString();
    granted.store(true);
  });
  while (locks.StatsSnapshot().lock_waits == 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_FALSE(granted.load());
  locks.ReleaseAll(9);
  older.join();
  EXPECT_TRUE(granted.load());
  EXPECT_TRUE(locks.Holds(3, 1, 5));
  EXPECT_GE(locks.StatsSnapshot().lock_waits, 1u);
}

TEST(ShardedLockTest, ContendedStressStaysDeadlockFreeAndDrains) {
  // Eight threads fight over 32 keys with wait-die retries. The invariant
  // under test is liveness (no deadlock, every thread finishes) and a
  // clean drain (no entry leaks a holder).
  ShardedLockManager locks(8);
  std::atomic<uint64_t> next_txn{1};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; t++) {
    threads.emplace_back([&, t] {
      uint64_t rng = 0x9e3779b97f4a7c15ULL * (t + 1);
      for (int i = 0; i < 400; i++) {
        const TxnId txn = next_txn.fetch_add(1);
        for (int k = 0; k < 3; k++) {
          rng ^= rng << 13;
          rng ^= rng >> 7;
          rng ^= rng << 17;
          const Key key = rng % 8;
          const auto mode = (rng & 64)
                                ? ShardedLockManager::LockMode::kExclusive
                                : ShardedLockManager::LockMode::kShared;
          const Status st = locks.Acquire(txn, 1, key, mode);
          if (!st.ok()) {
            ASSERT_TRUE(st.IsBusy()) << st.ToString();  // died, never stuck
            break;
          }
          std::this_thread::yield();  // dwell while holding: force overlap
        }
        locks.ReleaseAll(txn);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(locks.total_locks(), 0u);
  const ShardedLockManager::Stats s = locks.StatsSnapshot();
  EXPECT_GT(s.acquires, 0u);
  EXPECT_GT(s.wait_die_aborts + s.lock_waits, 0u) << "no contention seen";
}

// ---- multi-writer engine: live verification, then the crash storm ----

EngineOptions ConcurrentOptions() {
  EngineOptions o = SmallOptions();
  o.num_rows = 1200;
  o.cache_pages = 96;
  o.lazy_writer_reference_cache_pages = 96;
  o.checkpoint_interval_updates = 150;
  o.group_commit_window_us = 500;
  o.group_commit_max_batch = 8;  // > 1 turns the batcher on
  o.lock_shards = 16;
  return o;
}

TEST(ConcurrentFrontendTest, FourWritersCommitAndVerifyWithoutCrash) {
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(ConcurrentOptions(), &e));

  ConcurrentWorkloadConfig wc;
  wc.threads = 4;
  wc.ops_per_txn = 4;
  wc.seed = 17;
  ConcurrentDriver driver(e.get(), wc);
  ASSERT_OK(driver.RunUntilAcked(200));
  EXPECT_GE(driver.acked_commits(), 200u);
  EXPECT_EQ(driver.uncertain_txns(), 0u);  // nothing crashed

  uint64_t checked = 0;
  ASSERT_OK(driver.Verify(e.get(), &checked));
  EXPECT_GT(checked, 1200u);
  uint64_t seen = 0;
  ASSERT_OK(driver.VerifyScan(e.get(), &seen));
  EXPECT_EQ(seen, driver.ExpectedRows());

  const EngineStats s = e->Stats();
  EXPECT_GE(s.committed, driver.acked_commits());
  EXPECT_GE(s.commits_enqueued, driver.acked_commits());
  EXPECT_GT(s.lock_acquires, 0u);
  EXPECT_GT(s.commit_batches, 0u);
  // The whole point of the batcher: fewer log forces than commits.
  EXPECT_LT(s.commit_batches, s.commits_enqueued);
}

TEST(ConcurrentFrontendTest, CrashStormRecoversOneLogFifteenWays) {
  ConcurrentStormConfig c;
  c.generations = 2;
  c.acked_per_generation = 150;
  c.workload.threads = 4;
  c.workload.ops_per_txn = 4;
  c.workload.seed = 23;

  ConcurrentStormResult r;
  const Status st = RunConcurrentCrashStorm(ConcurrentOptions(), c, &r);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(r.recoveries, 30u);  // 2 generations x 5 methods x 3 threads
  EXPECT_GE(r.acked_commits, 300u);
  EXPECT_GT(r.verified_rows, 0u);
  EXPECT_GT(r.commit_batches, 0u);
  EXPECT_LT(r.commit_batches, r.commits_enqueued);
  EXPECT_GT(r.lock_acquires, 0u);
}

TEST(ConcurrentFrontendTest, CrashStormSecondSeedSerialGeometry) {
  // Same campaign, different interleaving seed and serial-sized batches:
  // group_commit_max_batch = 1 disables the batcher entirely, so the
  // concurrent clients exercise the per-commit-flush path too.
  EngineOptions o = ConcurrentOptions();
  o.group_commit_max_batch = 1;
  ConcurrentStormConfig c;
  c.generations = 1;
  c.acked_per_generation = 120;
  c.workload.threads = 4;
  c.workload.ops_per_txn = 3;
  c.workload.seed = 29;

  ConcurrentStormResult r;
  const Status st = RunConcurrentCrashStorm(o, c, &r);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(r.recoveries, 15u);
  EXPECT_GE(r.acked_commits, 120u);
}

}  // namespace
}  // namespace deutero
