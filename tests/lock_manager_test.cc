// Unit tests for the logical (table, key) lock manager.
#include <gtest/gtest.h>

#include "tc/lock_manager.h"

namespace deutero {
namespace {

using Mode = LockManager::LockMode;

TEST(LockManagerTest, ExclusiveAcquireAndConflict) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 1, 42, Mode::kExclusive).ok());
  EXPECT_TRUE(lm.Holds(1, 1, 42));
  EXPECT_TRUE(lm.Acquire(2, 1, 42, Mode::kExclusive).IsBusy());
  EXPECT_TRUE(lm.Acquire(2, 1, 42, Mode::kShared).IsBusy());
}

TEST(LockManagerTest, ReacquireByOwnerIsOk) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 1, 42, Mode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(1, 1, 42, Mode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(1, 1, 42, Mode::kShared).ok());
  EXPECT_EQ(lm.total_locks(), 1u);
}

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 1, 7, Mode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, 1, 7, Mode::kShared).ok());
  EXPECT_TRUE(lm.Holds(1, 1, 7));
  EXPECT_TRUE(lm.Holds(2, 1, 7));
  EXPECT_TRUE(lm.Acquire(3, 1, 7, Mode::kExclusive).IsBusy());
}

TEST(LockManagerTest, UpgradeSoleSharedHolder) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 1, 7, Mode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, 1, 7, Mode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, 1, 7, Mode::kShared).IsBusy());
}

TEST(LockManagerTest, UpgradeWithOtherSharersFails) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 1, 7, Mode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, 1, 7, Mode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, 1, 7, Mode::kExclusive).IsBusy());
}

TEST(LockManagerTest, ReleaseAllFreesEverything) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 1, 7, Mode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(1, 1, 8, Mode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(1, 2, 7, Mode::kExclusive).ok());
  EXPECT_EQ(lm.held_by(1), 3u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.held_by(1), 0u);
  EXPECT_EQ(lm.total_locks(), 0u);
  EXPECT_TRUE(lm.Acquire(2, 1, 7, Mode::kExclusive).ok());
}

TEST(LockManagerTest, ReleaseOneSharerKeepsOthers) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 1, 7, Mode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, 1, 7, Mode::kShared).ok());
  lm.ReleaseAll(1);
  EXPECT_FALSE(lm.Holds(1, 1, 7));
  EXPECT_TRUE(lm.Holds(2, 1, 7));
  EXPECT_TRUE(lm.Acquire(3, 1, 7, Mode::kExclusive).IsBusy());
}

TEST(LockManagerTest, DifferentTablesSameKeyAreDistinctLocks) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 1, 7, Mode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, 2, 7, Mode::kExclusive).ok());
  EXPECT_EQ(lm.total_locks(), 2u);
}

TEST(LockManagerTest, ResetDropsAllState) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 1, 7, Mode::kExclusive).ok());
  lm.Reset();
  EXPECT_EQ(lm.total_locks(), 0u);
  EXPECT_TRUE(lm.Acquire(2, 1, 7, Mode::kExclusive).ok());
}

TEST(LockManagerTest, ReleaseUnknownTxnIsNoop) {
  LockManager lm;
  lm.ReleaseAll(99);
  EXPECT_EQ(lm.total_locks(), 0u);
}

}  // namespace
}  // namespace deutero
