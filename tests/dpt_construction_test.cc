// DPT construction semantics on hand-crafted logs:
//  - Algorithm 3 (SQL Server analysis with BW pruning),
//  - Algorithm 4 (logical DPT from Δ-records) and its App. D variants,
//  - ATT maintenance and the PF-list.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dc/data_component.h"
#include "recovery/analysis.h"
#include "sim/clock.h"
#include "wal/log_manager.h"

namespace deutero {
namespace {

class DptConstructionTest : public ::testing::Test {
 protected:
  DptConstructionTest() : log_(&clock_, 8192, 0.0) {
    EngineOptions o;
    o.page_size = 512;
    o.cache_pages = 32;
    dc_ = std::make_unique<DataComponent>(&clock_, &log_, o);
    LogRecord b;
    b.type = LogRecordType::kBeginCheckpoint;
    bckpt_ = log_.Append(b);
  }

  Lsn Update(TxnId txn, Key key, PageId pid) {
    LogRecord r;
    r.type = LogRecordType::kUpdate;
    r.txn_id = txn;
    r.table_id = 1;
    r.key = key;
    r.after = "x";
    r.pid = pid;
    return log_.Append(r);
  }

  Lsn Bw(std::vector<PageId> written, Lsn fw) {
    LogRecord r;
    r.type = LogRecordType::kBwRecord;
    r.written_set = std::move(written);
    r.fw_lsn = fw;
    return log_.Append(r);
  }

  Lsn Delta(std::vector<PageId> dirty, std::vector<PageId> written, Lsn fw,
            uint32_t first_dirty, Lsn tc_lsn, bool has_fw = true,
            std::vector<Lsn> dirty_lsns = {}) {
    LogRecord r;
    r.type = LogRecordType::kDeltaRecord;
    r.dirty_set = std::move(dirty);
    r.written_set = std::move(written);
    r.fw_lsn = fw;
    r.first_dirty = first_dirty;
    r.tc_lsn = tc_lsn;
    r.has_fw_fields = has_fw;
    r.dirty_lsns = std::move(dirty_lsns);
    return log_.Append(r);
  }

  Lsn TxnCtl(LogRecordType type, TxnId txn) {
    LogRecord r;
    r.type = type;
    r.txn_id = txn;
    return log_.Append(r);
  }

  SqlAnalysisResult Sql() {
    log_.Flush();
    SqlAnalysisResult out;
    EXPECT_TRUE(RunSqlAnalysis(&log_, bckpt_, &out).ok());
    return out;
  }

  DcRecoveryResult Dc(DptMode mode) {
    log_.Flush();
    DcRecoveryResult out;
    EXPECT_TRUE(
        RunDcRecovery(&log_, dc_.get(), bckpt_, mode, true, false, &out).ok());
    return out;
  }

  SimClock clock_;
  LogManager log_;
  std::unique_ptr<DataComponent> dc_;
  Lsn bckpt_ = kInvalidLsn;
};

// ---------------------------------------------------------------------------
// Algorithm 3 (SQL analysis)
// ---------------------------------------------------------------------------

TEST_F(DptConstructionTest, SqlFirstMentionSetsRlsnLaterMentionsSetLastLsn) {
  const Lsn l1 = Update(1, 10, 100);
  const Lsn l2 = Update(1, 11, 100);
  auto r = Sql();
  ASSERT_EQ(r.dpt.size(), 1u);
  const auto* e = r.dpt.Find(100);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->rlsn, l1);
  EXPECT_EQ(e->last_lsn, l2);
}

TEST_F(DptConstructionTest, SqlBwPruneRemovesFlushedAfterLastUpdate) {
  const Lsn l1 = Update(1, 10, 100);
  Update(1, 11, 101);
  Bw({100}, /*fw=*/l1 + 1000);  // 100's lastLSN <= FW-LSN: flushed clean
  auto r = Sql();
  EXPECT_EQ(r.dpt.Find(100), nullptr);
  EXPECT_NE(r.dpt.Find(101), nullptr);
  EXPECT_EQ(r.bw_records_seen, 1u);
}

TEST_F(DptConstructionTest, SqlBwPruneBumpsRlsnWhenNotRemovable) {
  const Lsn l1 = Update(1, 10, 100);
  const Lsn fw = l1 + 1;             // between the two updates
  const Lsn l2 = Update(1, 12, 100);  // lastLSN > FW-LSN: stays
  Bw({100}, fw);
  auto r = Sql();
  const auto* e = r.dpt.Find(100);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->rlsn, fw);  // rLSN raised to FW-LSN (Alg. 3 line 17-18)
  EXPECT_EQ(e->last_lsn, l2);
}

TEST_F(DptConstructionTest, SqlBwForUnknownPidIsIgnored) {
  Update(1, 10, 100);
  Bw({999}, 50);
  auto r = Sql();
  EXPECT_EQ(r.dpt.size(), 1u);
}

TEST_F(DptConstructionTest, SqlAttTracksLosersOnly) {
  TxnCtl(LogRecordType::kTxnBegin, 5);
  Update(5, 1, 100);
  TxnCtl(LogRecordType::kTxnBegin, 6);
  const Lsn u6 = Update(6, 2, 101);
  TxnCtl(LogRecordType::kTxnCommit, 5);
  auto r = Sql();
  EXPECT_EQ(r.att.size(), 1u);
  ASSERT_TRUE(r.att.count(6));
  EXPECT_EQ(r.att.at(6), u6);
  EXPECT_EQ(r.max_txn_id, 6u);
}

TEST_F(DptConstructionTest, SqlDeltaRecordsAreCountedButIgnored) {
  Delta({55, 56}, {}, 0, 2, 10);
  auto r = Sql();
  EXPECT_EQ(r.dpt.size(), 0u);
  EXPECT_EQ(r.delta_records_seen, 1u);
}

// ---------------------------------------------------------------------------
// Algorithm 4 (logical DPT)
// ---------------------------------------------------------------------------

TEST_F(DptConstructionTest, LogicalNoFlushUsesRsspLsnAsRlsn) {
  Delta({10, 11}, {}, kInvalidLsn, /*first_dirty=*/2, /*tc_lsn=*/900);
  auto r = Dc(DptMode::kStandard);
  ASSERT_EQ(r.dpt.size(), 2u);
  // "For the first Δ-record after the RSSP, we use rsspLSN" (§4.2).
  EXPECT_EQ(r.dpt.Find(10)->rlsn, bckpt_);
  EXPECT_EQ(r.dpt.Find(11)->rlsn, bckpt_);
  EXPECT_EQ(r.last_delta_tc_lsn, 900u);
}

TEST_F(DptConstructionTest, LogicalFirstDirtySplitsRlsnAssignment) {
  // PIDs 10,11 dirtied before the first write (index < 2); 12 after.
  Delta({10, 11, 12}, {}, /*fw=*/500, /*first_dirty=*/2, /*tc_lsn=*/900);
  auto r = Dc(DptMode::kStandard);
  EXPECT_EQ(r.dpt.Find(10)->rlsn, bckpt_);
  EXPECT_EQ(r.dpt.Find(11)->rlsn, bckpt_);
  EXPECT_EQ(r.dpt.Find(12)->rlsn, 500u);  // FW-LSN (Alg. 4 line 14)
}

TEST_F(DptConstructionTest, LogicalSecondDeltaUsesPreviousTcLsn) {
  Delta({10}, {}, kInvalidLsn, 1, /*tc_lsn=*/300);
  Delta({20}, {}, kInvalidLsn, 1, /*tc_lsn=*/700);
  auto r = Dc(DptMode::kStandard);
  EXPECT_EQ(r.dpt.Find(10)->rlsn, bckpt_);
  EXPECT_EQ(r.dpt.Find(20)->rlsn, 300u);  // previous Δ's TC-LSN
  EXPECT_EQ(r.last_delta_tc_lsn, 700u);
}

TEST_F(DptConstructionTest, LogicalWrittenSetPrunesOldEntries) {
  Delta({10}, {}, kInvalidLsn, 1, 300);
  // Interval 2: 10 flushed; its lastLSN proxy (bckpt) < FW-LSN 500.
  Delta({20}, {10}, /*fw=*/500, /*first_dirty=*/0, /*tc_lsn=*/700);
  auto r = Dc(DptMode::kStandard);
  EXPECT_EQ(r.dpt.Find(10), nullptr);
  ASSERT_NE(r.dpt.Find(20), nullptr);
  EXPECT_EQ(r.dpt.Find(20)->rlsn, 500u);  // dirtied after first write
}

TEST_F(DptConstructionTest, LogicalRedirtiedAfterFlushSurvivesPrune) {
  // PID 10 dirtied before the first write AND after it, then flushed once:
  // its lastLSN proxy becomes FW-LSN, which is NOT < FW-LSN => kept.
  Delta({10, 10}, {10}, /*fw=*/500, /*first_dirty=*/1, /*tc_lsn=*/700);
  auto r = Dc(DptMode::kStandard);
  const auto* e = r.dpt.Find(10);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->rlsn, 500u);  // bumped by the prune step (Alg. 4 line 21-22)
}

TEST_F(DptConstructionTest, LogicalRlsnBumpOnSurvivors) {
  Delta({10}, {}, kInvalidLsn, 1, 300);
  // 10 flushed at fw=500 but ALSO redirtied in this interval after the
  // flush: entry survives with rLSN raised to 500.
  Delta({10}, {10}, /*fw=*/500, /*first_dirty=*/0, /*tc_lsn=*/700);
  auto r = Dc(DptMode::kStandard);
  const auto* e = r.dpt.Find(10);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->rlsn, 500u);
}

TEST_F(DptConstructionTest, PfListIsFirstMentionOrder) {
  Delta({10, 11, 10}, {}, kInvalidLsn, 3, 300);
  Delta({11, 12}, {}, kInvalidLsn, 2, 700);
  auto r = Dc(DptMode::kStandard);
  EXPECT_EQ(r.pf_list, (std::vector<PageId>{10, 11, 12}));
}

TEST_F(DptConstructionTest, LogicalIgnoresBwRecordsButCountsThem) {
  Bw({10}, 50);
  Delta({10}, {}, kInvalidLsn, 1, 300);
  auto r = Dc(DptMode::kStandard);
  EXPECT_NE(r.dpt.Find(10), nullptr);  // BW pruning is SQL-only
  EXPECT_EQ(r.bw_records_seen, 1u);
  EXPECT_EQ(r.delta_records_seen, 1u);
}

TEST_F(DptConstructionTest, NoDeltaRecordsMeansEmptyDptAndTailMode) {
  Update(1, 10, 100);
  auto r = Dc(DptMode::kStandard);
  EXPECT_EQ(r.dpt.size(), 0u);
  EXPECT_EQ(r.last_delta_tc_lsn, kInvalidLsn);
}

// ---------------------------------------------------------------------------
// App. D variants
// ---------------------------------------------------------------------------

TEST_F(DptConstructionTest, PerfectModeUsesExactLsns) {
  Delta({10, 11}, {}, /*fw=*/120, /*first_dirty=*/1, /*tc_lsn=*/300,
        /*has_fw=*/true, /*dirty_lsns=*/{101, 177});
  auto r = Dc(DptMode::kPerfect);
  EXPECT_EQ(r.dpt.Find(10)->rlsn, 101u);
  EXPECT_EQ(r.dpt.Find(11)->rlsn, 177u);
}

TEST_F(DptConstructionTest, PerfectModePrunesWithExactLastLsns) {
  // 10 updated at 101 then flushed under fw=150: prune. 11 updated at 177
  // (after fw): kept.
  Delta({10, 11}, {10}, /*fw=*/150, /*first_dirty=*/1, /*tc_lsn=*/300,
        true, {101, 177});
  auto r = Dc(DptMode::kPerfect);
  EXPECT_EQ(r.dpt.Find(10), nullptr);
  EXPECT_NE(r.dpt.Find(11), nullptr);
}

TEST_F(DptConstructionTest, ReducedModeAssignsPrevDeltaToEverything) {
  Delta({10, 11}, {}, kInvalidLsn, 0, /*tc_lsn=*/300, /*has_fw=*/false);
  Delta({12}, {}, kInvalidLsn, 0, /*tc_lsn=*/600, /*has_fw=*/false);
  auto r = Dc(DptMode::kReduced);
  EXPECT_EQ(r.dpt.Find(10)->rlsn, bckpt_);
  EXPECT_EQ(r.dpt.Find(11)->rlsn, bckpt_);
  EXPECT_EQ(r.dpt.Find(12)->rlsn, 300u);
}

TEST_F(DptConstructionTest, ReducedModePrunesOnlyPriorIntervalEntries) {
  Delta({10}, {}, kInvalidLsn, 0, /*tc_lsn=*/300, false);
  // Interval 2 dirties 20 and flushes both 10 and 20. Only 10 (prior
  // interval) may be pruned (App. D.2).
  Delta({20}, {10, 20}, kInvalidLsn, 0, /*tc_lsn=*/600, false);
  auto r = Dc(DptMode::kReduced);
  EXPECT_EQ(r.dpt.Find(10), nullptr);
  EXPECT_NE(r.dpt.Find(20), nullptr);
}

// ---------------------------------------------------------------------------
// ObserveForAtt
// ---------------------------------------------------------------------------

TEST(ObserveForAttTest, TracksChainTailAndRemovesOnEnd) {
  ActiveTxnTable att;
  TxnId max_txn = 0;
  LogRecord r;
  r.type = LogRecordType::kTxnBegin;
  r.txn_id = 3;
  r.lsn = 10;
  ObserveForAtt(r, &att, &max_txn);
  r.type = LogRecordType::kUpdate;
  r.lsn = 20;
  ObserveForAtt(r, &att, &max_txn);
  EXPECT_EQ(att.at(3), 20u);
  r.type = LogRecordType::kTxnAbort;
  r.lsn = 30;
  ObserveForAtt(r, &att, &max_txn);
  EXPECT_TRUE(att.empty());
  EXPECT_EQ(max_txn, 3u);
}

// ---------------------------------------------------------------------------
// The open-addressed DirtyPageTable structure itself (robin-hood probing,
// backward-shift deletion, doubling growth) under churn — the counterpart
// of the buffer-pool PageTable suite, plus the DPT's ADDENTRY semantics.
// ---------------------------------------------------------------------------

TEST(DirtyPageTableStructure, AddFindRemoveBasics) {
  DirtyPageTable dpt;
  EXPECT_TRUE(dpt.empty());
  dpt.AddOrUpdate(10, 100);
  dpt.AddOrUpdate(10, 200);  // later mention: only lastLSN advances
  ASSERT_NE(dpt.Find(10), nullptr);
  EXPECT_EQ(dpt.Find(10)->rlsn, 100u);
  EXPECT_EQ(dpt.Find(10)->last_lsn, 200u);
  EXPECT_EQ(dpt.Find(11), nullptr);
  EXPECT_TRUE(dpt.Remove(10));
  EXPECT_FALSE(dpt.Remove(10));
  EXPECT_TRUE(dpt.empty());
}

TEST(DirtyPageTableStructure, GrowthPreservesEntriesAndSemantics) {
  DirtyPageTable dpt;
  const size_t initial_slots = dpt.slot_count();
  // Push far past the initial geometry to force multiple doublings.
  for (PageId pid = 0; pid < 10'000; pid++) {
    dpt.AddOrUpdate(pid, pid + 7);
  }
  EXPECT_EQ(dpt.size(), 10'000u);
  EXPECT_GT(dpt.slot_count(), initial_slots);
  EXPECT_LE(dpt.size() * 2, dpt.slot_count()) << "load factor above 50%";
  for (PageId pid = 0; pid < 10'000; pid++) {
    ASSERT_NE(dpt.Find(pid), nullptr) << "pid " << pid << " lost in growth";
    EXPECT_EQ(dpt.Find(pid)->rlsn, pid + 7);
  }
}

TEST(DirtyPageTableStructure, EraseReinsertChurn) {
  DirtyPageTable dpt;
  // BW-pruning shape: interleave inserts with removals of an older cohort,
  // then re-insert removed pids with fresh LSNs. rLSN must reset (a removed
  // entry is gone; a later mention is a first mention again).
  for (uint32_t round = 0; round < 50; round++) {
    for (PageId pid = 0; pid < 64; pid++) {
      dpt.AddOrUpdate(round * 64 + pid, 1000 + round);
    }
    if (round >= 1) {
      for (PageId pid = 0; pid < 64; pid++) {
        EXPECT_TRUE(dpt.Remove((round - 1) * 64 + pid));
      }
    }
  }
  EXPECT_EQ(dpt.size(), 64u);  // only the last round survives
  const PageId revived = 5;    // removed in round 1's pruning
  EXPECT_EQ(dpt.Find(revived), nullptr);
  dpt.AddOrUpdate(revived, 9999);
  ASSERT_NE(dpt.Find(revived), nullptr);
  EXPECT_EQ(dpt.Find(revived)->rlsn, 9999u) << "stale rLSN after reinsert";
}

TEST(DirtyPageTableStructure, CollidingKeysSurviveBackwardShiftDeletion) {
  DirtyPageTable dpt;
  // Dense pids cluster after fibonacci hashing into few slots only when the
  // table is small; force collisions by inserting many, deleting from the
  // middle of chains, and verifying the remainder stays reachable.
  std::vector<PageId> pids;
  for (PageId pid = 1; pid <= 512; pid++) pids.push_back(pid * 3);
  for (PageId pid : pids) dpt.AddExact(pid, pid, pid + 1);
  for (size_t i = 0; i < pids.size(); i += 2) EXPECT_TRUE(dpt.Remove(pids[i]));
  for (size_t i = 0; i < pids.size(); i++) {
    if (i % 2 == 0) {
      EXPECT_EQ(dpt.Find(pids[i]), nullptr);
    } else {
      ASSERT_NE(dpt.Find(pids[i]), nullptr) << "pid " << pids[i];
      EXPECT_EQ(dpt.Find(pids[i])->last_lsn, pids[i] + 1);
    }
  }
  EXPECT_EQ(dpt.size(), pids.size() / 2);
}

TEST(DirtyPageTableStructure, ClearKeepsCapacityAndEmpties) {
  DirtyPageTable dpt;
  for (PageId pid = 0; pid < 1000; pid++) dpt.AddOrUpdate(pid, 1);
  const size_t slots = dpt.slot_count();
  dpt.Clear();
  EXPECT_TRUE(dpt.empty());
  EXPECT_EQ(dpt.slot_count(), slots);
  EXPECT_EQ(dpt.Find(5), nullptr);
  dpt.AddOrUpdate(5, 42);
  EXPECT_EQ(dpt.Find(5)->rlsn, 42u);
}

TEST(DirtyPageTableStructure, ForEachVisitsEveryEntryOnce) {
  DirtyPageTable dpt;
  for (PageId pid = 100; pid < 200; pid++) dpt.AddOrUpdate(pid, pid);
  uint64_t visits = 0;
  uint64_t pid_sum = 0;
  dpt.ForEach([&](PageId pid, const DirtyPageTable::Entry& e) {
    visits++;
    pid_sum += pid;
    EXPECT_EQ(e.rlsn, pid);
  });
  EXPECT_EQ(visits, 100u);
  EXPECT_EQ(pid_sum, (100u + 199u) * 100u / 2u);
}

}  // namespace
}  // namespace deutero
