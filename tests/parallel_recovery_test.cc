// Parallel-vs-serial equivalence sweeps for the partitioned recovery
// pipelines — redo (PR 4), analysis/DPT construction and undo (ISSUE 9):
// for every recovery method and recovery_threads in {1, 2, 4, 8}, the same
// crash image must recover to byte-identical table content with the same
// loser-transaction outcome; and the pass-level decision counters, tables
// (DPT/ATT/PF-list) and — for undo — the appended log SUFFIX of each
// parallel pipeline must match the serial pass exactly (the pipelines
// re-partition the work, they must not change any decision).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "recovery/analysis.h"
#include "recovery/parallel_analysis.h"
#include "recovery/parallel_redo.h"
#include "recovery/redo.h"
#include "recovery/stats.h"
#include "recovery/undo.h"
#include "test_util.h"
#include "workload/driver.h"
#include "workload/scenario.h"

namespace deutero {
namespace {

using testing_util::SmallOptions;

/// Key + payload digest of the default table (byte-identical comparison).
std::string ContentDigest(Engine* e) {
  std::string digest;
  EXPECT_OK(e->dc().btree().ScanAll([&](Key k, Slice v) {
    digest.append(reinterpret_cast<const char*>(&k), sizeof(k));
    digest.append(v.data(), v.size());
  }));
  return digest;
}

/// The mixed crash workload of the integration/scenario suites: inserts,
/// deletes and scans riding on updates, two checkpoints, an uncommitted
/// tail for undo to roll back.
void BuildMixedCrashImage(Engine* e, WorkloadDriver* driver) {
  ASSERT_OK(driver->RunOps(400));
  ASSERT_OK(e->Checkpoint());
  ASSERT_OK(driver->RunOps(300));
  ASSERT_OK(e->Checkpoint());
  ASSERT_OK(driver->RunOps(300));
  ASSERT_OK(driver->RunOpsNoCommit(9));  // in-flight losers
  e->tc().ForceLog();
  driver->OnCrash();
  e->SimulateCrash();
}

WorkloadConfig MixedWorkload() {
  WorkloadConfig wc;
  wc.insert_fraction = 0.15;
  wc.delete_fraction = 0.10;
  wc.scan_fraction = 0.05;
  return wc;
}

class ParallelRecoveryTest : public ::testing::TestWithParam<RecoveryMethod> {
};

INSTANTIATE_TEST_SUITE_P(AllMethods, ParallelRecoveryTest,
                         ::testing::Values(RecoveryMethod::kLog0,
                                           RecoveryMethod::kLog1,
                                           RecoveryMethod::kLog2,
                                           RecoveryMethod::kSql1,
                                           RecoveryMethod::kSql2),
                         [](const auto& param_info) {
                           return RecoveryMethodName(param_info.param);
                         });

TEST_P(ParallelRecoveryTest, ThreadSweepIsByteIdenticalToSerial) {
  EngineOptions o = SmallOptions();
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(o, &e));
  WorkloadDriver driver(e.get(), MixedWorkload());
  BuildMixedCrashImage(e.get(), &driver);

  Engine::StableSnapshot snap;
  ASSERT_OK(e->TakeStableSnapshot(&snap));

  std::string serial_digest;
  uint64_t serial_txns_undone = 0;
  uint64_t serial_undo_ops = 0;
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    // Recover the SAME crash image with a fresh engine configured for
    // `threads` partition workers.
    EngineOptions ot = o;
    ot.recovery_threads = threads;
    std::unique_ptr<Engine> et;
    ASSERT_OK(Engine::Open(ot, &et));
    et->SimulateCrash();
    ASSERT_OK(et->RestoreStableSnapshot(snap));
    RecoveryStats st;
    ASSERT_OK(et->Recover(GetParam(), &st));
    EXPECT_EQ(st.redo_threads, threads) << "pipeline engagement mismatch";
    if (threads > 1) {
      // All three passes must engage their pipelines (ISSUE 9) — except
      // Log0's analysis, which builds no DPT and stays serial by design.
      EXPECT_EQ(st.undo_threads, threads) << "undo pipeline not engaged";
      if (GetParam() != RecoveryMethod::kLog0) {
        EXPECT_EQ(st.analysis_threads, threads)
            << "analysis pipeline not engaged";
      }
    }

    uint64_t rows = 0;
    ASSERT_OK(et->dc().btree().CheckWellFormed(&rows));

    const std::string digest = ContentDigest(et.get());
    if (threads == 1) {
      serial_digest = digest;
      serial_txns_undone = st.txns_undone;
      serial_undo_ops = st.undo_ops;
      EXPECT_GT(serial_digest.size(), 0u);
    } else {
      EXPECT_EQ(digest, serial_digest)
          << RecoveryMethodName(GetParam()) << " with " << threads
          << " threads diverged from serial";
      // Identical loser-transaction outcome: same losers rolled back with
      // the same number of compensated operations.
      EXPECT_EQ(st.txns_undone, serial_txns_undone);
      EXPECT_EQ(st.undo_ops, serial_undo_ops);
    }
  }
}

// Merge-churn thread sweep (delete-side SMOs in the redone window): same
// byte-identical guarantee, plus catalog num_rows parity — the clamped
// row-delta replay must reproduce the serial counter exactly, and with
// scan-complete accounting the counter must also equal the true row count.
TEST_P(ParallelRecoveryTest, MergeChurnRowDeltaReplayMatchesSerial) {
  EngineOptions o = SmallOptions();
  o.num_rows = 600;  // concentrated churn: leaves drain, merge SMOs fire
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(o, &e));
  WorkloadConfig wc;
  wc.delete_fraction = 0.55;
  wc.insert_fraction = 0.05;
  WorkloadDriver driver(e.get(), wc);
  ASSERT_OK(driver.RunOps(800));
  ASSERT_OK(e->Checkpoint());
  ASSERT_OK(driver.RunOps(700));
  ASSERT_OK(driver.RunOpsNoCommit(9));  // in-flight losers
  e->tc().ForceLog();
  driver.OnCrash();
  e->SimulateCrash();
  ASSERT_GT(e->wal().stats().by_type[static_cast<size_t>(
                LogRecordType::kSmoMerge)],
            0u)
      << "merge-churn workload produced no merge SMOs";

  Engine::StableSnapshot snap;
  ASSERT_OK(e->TakeStableSnapshot(&snap));

  std::string serial_digest;
  uint64_t serial_rows = 0;
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    EngineOptions ot = o;
    ot.recovery_threads = threads;
    std::unique_ptr<Engine> et;
    ASSERT_OK(Engine::Open(ot, &et));
    et->SimulateCrash();
    ASSERT_OK(et->RestoreStableSnapshot(snap));
    RecoveryStats st;
    ASSERT_OK(et->Recover(GetParam(), &st));

    uint64_t rows = 0;
    ASSERT_OK(et->dc().btree().CheckWellFormed(&rows));
    EXPECT_EQ(et->dc().btree().row_count(), rows)
        << "recovered counter drifted from the true row count at "
        << threads << " threads";
    const std::string digest = ContentDigest(et.get());
    if (threads == 1) {
      serial_digest = digest;
      serial_rows = et->dc().btree().row_count();
    } else {
      EXPECT_EQ(digest, serial_digest) << threads << " threads";
      EXPECT_EQ(et->dc().btree().row_count(), serial_rows)
          << "num_rows diverged at " << threads << " threads";
    }
  }
}

TEST_P(ParallelRecoveryTest, OracleVerifiesAfterParallelRecovery) {
  EngineOptions o = SmallOptions();
  o.recovery_threads = 4;
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(o, &e));
  WorkloadDriver driver(e.get(), MixedWorkload());
  BuildMixedCrashImage(e.get(), &driver);
  RecoveryStats st;
  ASSERT_OK(e->Recover(GetParam(), &st));
  EXPECT_EQ(st.redo_threads, 4u);
  uint64_t checked = 0;
  ASSERT_OK(driver.Verify(0, &checked));
  EXPECT_GT(checked, 0u);
}

// Pass-level equivalence, logical family: the parallel pipeline must make
// exactly the serial pass's decisions — same scan/examine/apply/skip
// counters, same memo hits, same ATT (loser set), same max txn id.
TEST(ParallelRedoPass, LogicalCountersAndAttMatchSerial) {
  EngineOptions o = SmallOptions();
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(o, &e));
  WorkloadDriver driver(e.get(), MixedWorkload());
  BuildMixedCrashImage(e.get(), &driver);
  Engine::StableSnapshot snap;
  ASSERT_OK(e->TakeStableSnapshot(&snap));
  const Lsn start = e->wal().master().bckpt_lsn;

  auto run_pass = [&](uint32_t threads, RedoResult* rr,
                      std::string* digest) {
    ASSERT_OK(e->RestoreStableSnapshot(snap));
    ASSERT_OK(e->dc().OpenDatabase());
    e->dc().monitor().set_enabled(false);
    e->dc().pool().set_callbacks_enabled(false);
    DcRecoveryResult dcr;
    ASSERT_OK(RunDcRecovery(&e->wal(), &e->dc(), start, o.dpt_mode,
                            /*build_dpt=*/true, /*preload=*/false, &dcr));
    if (threads == 1) {
      ASSERT_OK(RunLogicalRedo(&e->wal(), &e->dc(), start, true, &dcr.dpt,
                               dcr.last_delta_tc_lsn, nullptr, o, rr));
    } else {
      ASSERT_OK(RunLogicalRedoParallel(&e->wal(), &e->dc(), start, true,
                                       &dcr.dpt, dcr.last_delta_tc_lsn,
                                       nullptr, o, threads, rr));
    }
    *digest = ContentDigest(e.get());
    e->SimulateCrash();
  };

  RedoResult serial;
  std::string serial_digest;
  run_pass(1, &serial, &serial_digest);
  for (uint32_t threads : {2u, 4u}) {
    RedoResult par;
    std::string digest;
    run_pass(threads, &par, &digest);
    EXPECT_EQ(digest, serial_digest) << threads << " threads";
    EXPECT_EQ(par.records_scanned, serial.records_scanned);
    EXPECT_EQ(par.examined, serial.examined);
    EXPECT_EQ(par.applied, serial.applied);
    EXPECT_EQ(par.skipped_dpt, serial.skipped_dpt);
    EXPECT_EQ(par.skipped_rlsn, serial.skipped_rlsn);
    EXPECT_EQ(par.skipped_plsn, serial.skipped_plsn);
    EXPECT_EQ(par.tail_ops, serial.tail_ops);
    EXPECT_EQ(par.leaf_memo_hits, serial.leaf_memo_hits);
    EXPECT_EQ(par.max_txn_id, serial.max_txn_id);
    EXPECT_EQ(par.threads_used, threads);

    // Identical loser set with identical chain tails.
    std::vector<std::pair<TxnId, Lsn>> a(serial.att.begin(),
                                         serial.att.end());
    std::vector<std::pair<TxnId, Lsn>> b(par.att.begin(), par.att.end());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "ATT diverged at " << threads << " threads";
  }
}

// Pass-level equivalence, SQL family — including SMO/DDL barriers inside
// the redone window (a table created after the checkpoint).
TEST(ParallelRedoPass, SqlCountersMatchSerialWithDdlInWindow) {
  EngineOptions o = SmallOptions();
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(o, &e));
  WorkloadDriver driver(e.get(), MixedWorkload());
  ASSERT_OK(driver.RunOps(300));
  ASSERT_OK(e->Checkpoint());
  ASSERT_OK(driver.RunOps(200));
  // DDL inside the redone window: its kCreateTable record forces the
  // parallel dispatcher through the barrier path.
  const TableId kSide = 7;
  ASSERT_OK(e->CreateTable(kSide, 16));
  {
    Table side;
    ASSERT_OK(e->OpenTable(kSide, &side));
    Txn t;
    ASSERT_OK(e->Begin(&t));
    for (Key k = 0; k < 40; k++) {
      ASSERT_OK(t.Insert(side, k, std::string(16, static_cast<char>('a' + (k % 26)))));
    }
    ASSERT_OK(t.Commit());
  }
  ASSERT_OK(driver.RunOps(200));
  driver.OnCrash();
  e->SimulateCrash();
  Engine::StableSnapshot snap;
  ASSERT_OK(e->TakeStableSnapshot(&snap));

  auto run_pass = [&](uint32_t threads, RedoResult* rr,
                      std::string* digest) {
    ASSERT_OK(e->RestoreStableSnapshot(snap));
    ASSERT_OK(e->dc().OpenDatabase());
    e->dc().monitor().set_enabled(false);
    e->dc().pool().set_callbacks_enabled(false);
    const Lsn start = e->wal().master().bckpt_lsn;
    SqlAnalysisResult ar;
    ASSERT_OK(RunSqlAnalysis(&e->wal(), start, &ar));
    if (threads == 1) {
      ASSERT_OK(RunSqlRedo(&e->wal(), &e->dc(), ar.redo_start_lsn, &ar.dpt,
                           /*prefetch=*/false, o, rr));
    } else {
      ASSERT_OK(RunSqlRedoParallel(&e->wal(), &e->dc(), ar.redo_start_lsn,
                                   &ar.dpt, /*prefetch=*/false, o, threads,
                                   rr));
    }
    *digest = ContentDigest(e.get());
    BTree* side = e->dc().FindTable(kSide);
    ASSERT_NE(side, nullptr) << "DDL not replayed";
    ASSERT_OK(side->ScanAll([&](Key k, Slice v) {
      digest->append(reinterpret_cast<const char*>(&k), sizeof(k));
      digest->append(v.data(), v.size());
    }));
    e->SimulateCrash();
  };

  RedoResult serial;
  std::string serial_digest;
  run_pass(1, &serial, &serial_digest);
  for (uint32_t threads : {2u, 4u}) {
    RedoResult par;
    std::string digest;
    run_pass(threads, &par, &digest);
    EXPECT_EQ(digest, serial_digest) << threads << " threads";
    EXPECT_EQ(par.records_scanned, serial.records_scanned);
    EXPECT_EQ(par.examined, serial.examined);
    EXPECT_EQ(par.applied, serial.applied);
    EXPECT_EQ(par.skipped_dpt, serial.skipped_dpt);
    EXPECT_EQ(par.skipped_rlsn, serial.skipped_rlsn);
    EXPECT_EQ(par.skipped_plsn, serial.skipped_plsn);
    EXPECT_EQ(par.smo_redone, serial.smo_redone);
    EXPECT_GT(par.smo_barriers, 0u) << "DDL window must take barriers";
  }
}

// ---------------------------------------------------------------------------
// Analysis-pass parity (ISSUE 9 tentpole): the sharded parallel DPT builds
// must reproduce the serial passes' tables, orders and counters exactly —
// per-PID event order is preserved by the shard FIFOs and DPT operations on
// distinct PIDs commute, so nothing may differ.
// ---------------------------------------------------------------------------

std::vector<std::tuple<PageId, Lsn, Lsn>> DptEntries(
    const DirtyPageTable& dpt) {
  std::vector<std::tuple<PageId, Lsn, Lsn>> v;
  dpt.ForEach([&](PageId pid, const DirtyPageTable::Entry& e) {
    v.emplace_back(pid, e.rlsn, e.last_lsn);
  });
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<std::pair<TxnId, Lsn>> AttEntries(const ActiveTxnTable& att) {
  std::vector<std::pair<TxnId, Lsn>> v(att.begin(), att.end());
  std::sort(v.begin(), v.end());
  return v;
}

TEST(ParallelAnalysisPass, SqlTablesAndCountersMatchSerial) {
  EngineOptions o = SmallOptions();
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(o, &e));
  WorkloadDriver driver(e.get(), MixedWorkload());
  BuildMixedCrashImage(e.get(), &driver);
  const Lsn start = e->wal().master().bckpt_lsn;

  SqlAnalysisResult serial;
  ASSERT_OK(RunSqlAnalysis(&e->wal(), start, &serial));
  ASSERT_GT(serial.dpt.size(), 0u);
  ASSERT_GT(serial.att.size(), 0u) << "no losers: the ATT parity is vacuous";

  for (uint32_t threads : {2u, 4u, 8u}) {
    SqlAnalysisResult par;
    ASSERT_OK(RunSqlAnalysisParallel(&e->wal(), start, threads, &par));
    EXPECT_EQ(par.threads_used, threads);
    EXPECT_EQ(DptEntries(par.dpt), DptEntries(serial.dpt))
        << "DPT diverged at " << threads << " threads";
    EXPECT_EQ(AttEntries(par.att), AttEntries(serial.att))
        << "ATT diverged at " << threads << " threads";
    EXPECT_EQ(par.redo_start_lsn, serial.redo_start_lsn);
    EXPECT_EQ(par.max_txn_id, serial.max_txn_id);
    EXPECT_EQ(par.records_scanned, serial.records_scanned);
    EXPECT_EQ(par.log_pages, serial.log_pages);
    EXPECT_EQ(par.bw_records_seen, serial.bw_records_seen);
    EXPECT_EQ(par.delta_records_seen, serial.delta_records_seen);
    EXPECT_EQ(par.dpt_updates, serial.dpt_updates)
        << "the shards performed different DPT work than the serial scan";
    // The shards partition the serial pass's work: their folded CPU shares
    // sum to exactly the serial total, and the critical path can only be a
    // part of it.
    EXPECT_DOUBLE_EQ(par.shard_cpu_us_total, serial.shard_cpu_us_total);
    EXPECT_LE(par.shard_cpu_us_max, serial.shard_cpu_us_max);
  }
}

// Under ARIES checkpointing the analysis seeds the DPT from the captured
// checkpoint image and redo_start_lsn reaches back to the oldest captured
// rLSN — the seed events must shard identically too.
TEST(ParallelAnalysisPass, SqlAriesCheckpointSeedsShardIdentically) {
  EngineOptions o = SmallOptions();
  o.checkpoint_scheme = CheckpointScheme::kAries;
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(o, &e));
  WorkloadDriver driver(e.get(), MixedWorkload());
  BuildMixedCrashImage(e.get(), &driver);
  const Lsn start = e->wal().master().bckpt_lsn;

  SqlAnalysisResult serial;
  ASSERT_OK(RunSqlAnalysis(&e->wal(), start, &serial));
  ASSERT_LT(serial.redo_start_lsn, start)
      << "ARIES analysis did not reach back: no captured DPT to seed from";

  for (uint32_t threads : {2u, 4u, 8u}) {
    SqlAnalysisResult par;
    ASSERT_OK(RunSqlAnalysisParallel(&e->wal(), start, threads, &par));
    EXPECT_EQ(DptEntries(par.dpt), DptEntries(serial.dpt)) << threads;
    EXPECT_EQ(AttEntries(par.att), AttEntries(serial.att)) << threads;
    EXPECT_EQ(par.redo_start_lsn, serial.redo_start_lsn) << threads;
    EXPECT_EQ(par.dpt_updates, serial.dpt_updates) << threads;
  }
}

TEST(ParallelAnalysisPass, DcPassMatchesSerialAcrossDptModes) {
  for (DptMode mode :
       {DptMode::kStandard, DptMode::kPerfect, DptMode::kReduced}) {
    EngineOptions o = SmallOptions();
    o.dpt_mode = mode;
    std::unique_ptr<Engine> e;
    ASSERT_OK(Engine::Open(o, &e));
    WorkloadDriver driver(e.get(), MixedWorkload());
    BuildMixedCrashImage(e.get(), &driver);
    Engine::StableSnapshot snap;
    ASSERT_OK(e->TakeStableSnapshot(&snap));
    const Lsn start = e->wal().master().bckpt_lsn;

    auto run_pass = [&](uint32_t threads, DcRecoveryResult* out,
                        std::string* digest) {
      ASSERT_OK(e->RestoreStableSnapshot(snap));
      ASSERT_OK(e->dc().OpenDatabase());
      if (threads == 1) {
        ASSERT_OK(RunDcRecovery(&e->wal(), &e->dc(), start, mode,
                                /*build_dpt=*/true, /*preload=*/false, out));
      } else {
        ASSERT_OK(RunDcRecoveryParallel(&e->wal(), &e->dc(), start, mode,
                                        /*build_dpt=*/true,
                                        /*preload=*/false, threads, out));
      }
      *digest = ContentDigest(e.get());  // the pass redoes SMOs: state too
      e->SimulateCrash();
    };

    DcRecoveryResult serial;
    std::string serial_digest;
    run_pass(1, &serial, &serial_digest);
    ASSERT_GT(serial.dpt.size(), 0u);

    for (uint32_t threads : {2u, 4u, 8u}) {
      DcRecoveryResult par;
      std::string digest;
      run_pass(threads, &par, &digest);
      EXPECT_EQ(par.threads_used, threads);
      EXPECT_EQ(digest, serial_digest)
          << "SMO redo diverged, mode " << static_cast<int>(mode) << ", "
          << threads << " threads";
      EXPECT_EQ(DptEntries(par.dpt), DptEntries(serial.dpt))
          << "DPT diverged, mode " << static_cast<int>(mode) << ", "
          << threads << " threads";
      // EXACT order: the PF-list is the global first-mention DirtySet
      // order, reassembled from per-shard (seq, pid) stamps.
      EXPECT_EQ(par.pf_list, serial.pf_list)
          << "PF-list order diverged, mode " << static_cast<int>(mode);
      EXPECT_EQ(par.last_delta_tc_lsn, serial.last_delta_tc_lsn);
      EXPECT_EQ(par.delta_records_seen, serial.delta_records_seen);
      EXPECT_EQ(par.smo_redone, serial.smo_redone);
      EXPECT_EQ(par.records_scanned, serial.records_scanned);
      EXPECT_EQ(par.log_pages, serial.log_pages);
      EXPECT_EQ(par.dpt_updates, serial.dpt_updates);
      EXPECT_DOUBLE_EQ(par.shard_cpu_us_total, serial.shard_cpu_us_total);
      EXPECT_LE(par.shard_cpu_us_max, serial.shard_cpu_us_max);
    }
  }
}

// ---------------------------------------------------------------------------
// Undo-pass parity (ISSUE 9 tentpole): the dispatcher appends every CLR and
// abort record in exactly the serial order, so the undo log SUFFIX must be
// byte-identical — not merely equivalent — and the recovered state with it.
// ---------------------------------------------------------------------------

TEST(ParallelUndoPass, LogStreamAndStateMatchSerialByteForByte) {
  EngineOptions o = SmallOptions();
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(o, &e));
  WorkloadDriver driver(e.get(), MixedWorkload());
  ASSERT_OK(driver.RunOps(400));
  ASSERT_OK(e->Checkpoint());
  ASSERT_OK(driver.RunOps(400));
  // Fat manual losers over dedicated committed keys (far above anything
  // the driver touches; no other txn open, so no wait-die conflicts): many
  // updates each (the fan-out path — leaf restores across partitions) plus
  // an insert and a delete each (the structure-op barrier path), so the
  // parallel pass exercises both deterministically.
  {
    Table table;
    ASSERT_OK(e->OpenDefaultTable(&table));
    const Key base = o.num_rows + 7000;
    const std::string v0(o.value_size, 's');
    const std::string v(o.value_size, 'u');
    {
      Txn setup;
      ASSERT_OK(e->Begin(&setup));
      for (uint32_t i = 0; i < 4; i++) {
        for (uint32_t j = 0; j <= 20; j++) {
          ASSERT_OK(setup.Insert(
              table, base + static_cast<Key>(i * 100 + j), v0));
        }
      }
      ASSERT_OK(setup.Commit());
    }
    Txn losers[4];
    for (uint32_t i = 0; i < 4; i++) {
      ASSERT_OK(e->Begin(&losers[i]));
      for (uint32_t j = 0; j < 20; j++) {
        ASSERT_OK(losers[i].Update(
            table, base + static_cast<Key>(i * 100 + j), v));
      }
      ASSERT_OK(losers[i].Insert(
          table, base + static_cast<Key>(1000 + i), v));
      ASSERT_OK(losers[i].Delete(
          table, base + static_cast<Key>(i * 100 + 20)));
    }
    e->tc().ForceLog();
    for (Txn& t : losers) t.Release();  // in flight at the crash
  }
  driver.OnCrash();
  e->SimulateCrash();
  Engine::StableSnapshot snap;
  ASSERT_OK(e->TakeStableSnapshot(&snap));
  const Lsn start = e->wal().master().bckpt_lsn;

  auto run_undo = [&](uint32_t threads, UndoResult* ur, std::string* digest,
                      std::string* log_suffix, Lsn* log_end) {
    ASSERT_OK(e->RestoreStableSnapshot(snap));
    ASSERT_OK(e->dc().OpenDatabase());
    e->dc().monitor().set_enabled(false);
    e->dc().pool().set_callbacks_enabled(false);
    // Identical serial analysis + redo both times: only undo differs.
    DcRecoveryResult dcr;
    ASSERT_OK(RunDcRecovery(&e->wal(), &e->dc(), start, o.dpt_mode,
                            /*build_dpt=*/true, /*preload=*/false, &dcr));
    RedoResult rr;
    ASSERT_OK(RunLogicalRedo(&e->wal(), &e->dc(), start, true, &dcr.dpt,
                             dcr.last_delta_tc_lsn, nullptr, o, &rr));
    const Lsn undo_start = e->wal().next_lsn();
    if (threads == 1) {
      ASSERT_OK(RunUndo(&e->wal(), &e->dc(), rr.att, ur));
    } else {
      ASSERT_OK(RunUndoParallel(&e->wal(), &e->dc(), rr.att, threads, ur));
    }
    *digest = ContentDigest(e.get());
    *log_end = e->wal().next_lsn();
    const Slice suffix = e->wal().StableBytes(undo_start);
    log_suffix->assign(suffix.data(), suffix.size());
    e->SimulateCrash();
  };

  UndoResult serial;
  std::string serial_digest, serial_suffix;
  Lsn serial_end = kInvalidLsn;
  run_undo(1, &serial, &serial_digest, &serial_suffix, &serial_end);
  ASSERT_GT(serial.txns_undone, 0u);
  ASSERT_GT(serial.clrs_written, 0u);
  ASSERT_GT(serial_suffix.size(), 0u);

  for (uint32_t threads : {2u, 4u, 8u}) {
    UndoResult par;
    std::string digest, suffix;
    Lsn end = kInvalidLsn;
    run_undo(threads, &par, &digest, &suffix, &end);
    EXPECT_EQ(par.threads_used, threads);
    EXPECT_EQ(digest, serial_digest)
        << "recovered state diverged at " << threads << " threads";
    EXPECT_EQ(end, serial_end);
    EXPECT_EQ(suffix, serial_suffix)
        << "the undo log stream is not byte-identical at " << threads
        << " threads";
    EXPECT_EQ(par.txns_undone, serial.txns_undone);
    EXPECT_EQ(par.ops_undone, serial.ops_undone);
    EXPECT_EQ(par.clrs_written, serial.clrs_written);
  }
}

// ---------------------------------------------------------------------------
// Multi-queue SimDisk (ISSUE 9): per-channel elevators change WHEN reads
// complete, never WHAT they return — same crash image, same recovered
// bytes, and the extra channels cannot make recovery slower.
// ---------------------------------------------------------------------------

TEST(MultiQueueSimDisk, ChannelsChangeTimingNotState) {
  EngineOptions o = SmallOptions();
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(o, &e));
  WorkloadDriver driver(e.get(), MixedWorkload());
  BuildMixedCrashImage(e.get(), &driver);
  Engine::StableSnapshot snap;
  ASSERT_OK(e->TakeStableSnapshot(&snap));

  std::string single_digest;
  uint64_t single_undone = 0;
  double single_ms = 0;
  for (uint32_t channels : {1u, 4u}) {
    EngineOptions oc = o;
    oc.recovery_threads = 4;
    oc.io.io_channels = channels;
    std::unique_ptr<Engine> ec;
    ASSERT_OK(Engine::Open(oc, &ec));
    ASSERT_EQ(ec->dc().disk().channels(), channels);
    ec->SimulateCrash();
    ASSERT_OK(ec->RestoreStableSnapshot(snap));
    RecoveryStats st;
    ASSERT_OK(ec->Recover(RecoveryMethod::kLog2, &st));
    const std::string digest = ContentDigest(ec.get());
    // The engine surfaces the phase breakdown of the run it just did.
    const EngineStats es = ec->Stats();
    EXPECT_GT(es.recovery_total_ms, 0.0);
    EXPECT_DOUBLE_EQ(es.recovery_total_ms, st.total_ms);
    EXPECT_NEAR(es.recovery_analysis_ms + es.recovery_redo_ms +
                    es.recovery_undo_ms,
                st.total_ms, 1e-6);
    if (channels == 1) {
      single_digest = digest;
      single_undone = st.txns_undone;
      single_ms = st.total_ms;
    } else {
      EXPECT_EQ(digest, single_digest)
          << "channel count changed recovered bytes";
      EXPECT_EQ(st.txns_undone, single_undone);
      EXPECT_LE(st.total_ms, single_ms)
          << "more channels made recovery slower";
    }
  }
}

// The partition map and DPT sharding invariants the pipeline relies on.
TEST(DptShards, PartitionAndUnionInvariants) {
  DirtyPageTable dpt;
  for (PageId pid = 1; pid <= 500; pid++) {
    dpt.AddExact(pid, /*rlsn=*/pid * 10, /*last_lsn=*/pid * 10 + 5);
  }
  for (uint32_t n : {2u, 4u, 7u}) {
    std::vector<DirtyPageTable> shards;
    BuildDptShards(dpt, n, &shards);
    ASSERT_EQ(shards.size(), n);
    size_t total = 0;
    for (uint32_t i = 0; i < n; i++) total += shards[i].size();
    EXPECT_EQ(total, dpt.size());
    for (PageId pid = 1; pid <= 500; pid++) {
      const uint32_t part = RedoPartitionOf(pid, n);
      for (uint32_t i = 0; i < n; i++) {
        const DirtyPageTable::Entry* e = shards[i].Find(pid);
        if (i == part) {
          ASSERT_NE(e, nullptr);
          EXPECT_EQ(e->rlsn, pid * 10);
          EXPECT_EQ(e->last_lsn, pid * 10 + 5);
        } else {
          EXPECT_EQ(e, nullptr);
        }
      }
    }
  }
}

}  // namespace
}  // namespace deutero
