// Parallel-vs-serial equivalence sweep for the partitioned redo pipeline:
// for every recovery method and recovery_threads in {1, 2, 4}, the same
// crash image must recover to byte-identical table content with the same
// loser-transaction outcome; and the pass-level RedoResult decision
// counters of the parallel pipeline must match the serial pass exactly
// (the pipeline re-partitions the work, it must not change any decision).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "recovery/analysis.h"
#include "recovery/parallel_redo.h"
#include "recovery/redo.h"
#include "recovery/stats.h"
#include "test_util.h"
#include "workload/driver.h"
#include "workload/scenario.h"

namespace deutero {
namespace {

using testing_util::SmallOptions;

/// Key + payload digest of the default table (byte-identical comparison).
std::string ContentDigest(Engine* e) {
  std::string digest;
  EXPECT_OK(e->dc().btree().ScanAll([&](Key k, Slice v) {
    digest.append(reinterpret_cast<const char*>(&k), sizeof(k));
    digest.append(v.data(), v.size());
  }));
  return digest;
}

/// The mixed crash workload of the integration/scenario suites: inserts,
/// deletes and scans riding on updates, two checkpoints, an uncommitted
/// tail for undo to roll back.
void BuildMixedCrashImage(Engine* e, WorkloadDriver* driver) {
  ASSERT_OK(driver->RunOps(400));
  ASSERT_OK(e->Checkpoint());
  ASSERT_OK(driver->RunOps(300));
  ASSERT_OK(e->Checkpoint());
  ASSERT_OK(driver->RunOps(300));
  ASSERT_OK(driver->RunOpsNoCommit(9));  // in-flight losers
  e->tc().ForceLog();
  driver->OnCrash();
  e->SimulateCrash();
}

WorkloadConfig MixedWorkload() {
  WorkloadConfig wc;
  wc.insert_fraction = 0.15;
  wc.delete_fraction = 0.10;
  wc.scan_fraction = 0.05;
  return wc;
}

class ParallelRecoveryTest : public ::testing::TestWithParam<RecoveryMethod> {
};

INSTANTIATE_TEST_SUITE_P(AllMethods, ParallelRecoveryTest,
                         ::testing::Values(RecoveryMethod::kLog0,
                                           RecoveryMethod::kLog1,
                                           RecoveryMethod::kLog2,
                                           RecoveryMethod::kSql1,
                                           RecoveryMethod::kSql2),
                         [](const auto& param_info) {
                           return RecoveryMethodName(param_info.param);
                         });

TEST_P(ParallelRecoveryTest, ThreadSweepIsByteIdenticalToSerial) {
  EngineOptions o = SmallOptions();
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(o, &e));
  WorkloadDriver driver(e.get(), MixedWorkload());
  BuildMixedCrashImage(e.get(), &driver);

  Engine::StableSnapshot snap;
  ASSERT_OK(e->TakeStableSnapshot(&snap));

  std::string serial_digest;
  uint64_t serial_txns_undone = 0;
  uint64_t serial_undo_ops = 0;
  for (uint32_t threads : {1u, 2u, 4u}) {
    // Recover the SAME crash image with a fresh engine configured for
    // `threads` partition workers.
    EngineOptions ot = o;
    ot.recovery_threads = threads;
    std::unique_ptr<Engine> et;
    ASSERT_OK(Engine::Open(ot, &et));
    et->SimulateCrash();
    ASSERT_OK(et->RestoreStableSnapshot(snap));
    RecoveryStats st;
    ASSERT_OK(et->Recover(GetParam(), &st));
    EXPECT_EQ(st.redo_threads, threads) << "pipeline engagement mismatch";

    uint64_t rows = 0;
    ASSERT_OK(et->dc().btree().CheckWellFormed(&rows));

    const std::string digest = ContentDigest(et.get());
    if (threads == 1) {
      serial_digest = digest;
      serial_txns_undone = st.txns_undone;
      serial_undo_ops = st.undo_ops;
      EXPECT_GT(serial_digest.size(), 0u);
    } else {
      EXPECT_EQ(digest, serial_digest)
          << RecoveryMethodName(GetParam()) << " with " << threads
          << " threads diverged from serial";
      // Identical loser-transaction outcome: same losers rolled back with
      // the same number of compensated operations.
      EXPECT_EQ(st.txns_undone, serial_txns_undone);
      EXPECT_EQ(st.undo_ops, serial_undo_ops);
    }
  }
}

// Merge-churn thread sweep (delete-side SMOs in the redone window): same
// byte-identical guarantee, plus catalog num_rows parity — the clamped
// row-delta replay must reproduce the serial counter exactly, and with
// scan-complete accounting the counter must also equal the true row count.
TEST_P(ParallelRecoveryTest, MergeChurnRowDeltaReplayMatchesSerial) {
  EngineOptions o = SmallOptions();
  o.num_rows = 600;  // concentrated churn: leaves drain, merge SMOs fire
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(o, &e));
  WorkloadConfig wc;
  wc.delete_fraction = 0.55;
  wc.insert_fraction = 0.05;
  WorkloadDriver driver(e.get(), wc);
  ASSERT_OK(driver.RunOps(800));
  ASSERT_OK(e->Checkpoint());
  ASSERT_OK(driver.RunOps(700));
  ASSERT_OK(driver.RunOpsNoCommit(9));  // in-flight losers
  e->tc().ForceLog();
  driver.OnCrash();
  e->SimulateCrash();
  ASSERT_GT(e->wal().stats().by_type[static_cast<size_t>(
                LogRecordType::kSmoMerge)],
            0u)
      << "merge-churn workload produced no merge SMOs";

  Engine::StableSnapshot snap;
  ASSERT_OK(e->TakeStableSnapshot(&snap));

  std::string serial_digest;
  uint64_t serial_rows = 0;
  for (uint32_t threads : {1u, 2u, 4u}) {
    EngineOptions ot = o;
    ot.recovery_threads = threads;
    std::unique_ptr<Engine> et;
    ASSERT_OK(Engine::Open(ot, &et));
    et->SimulateCrash();
    ASSERT_OK(et->RestoreStableSnapshot(snap));
    RecoveryStats st;
    ASSERT_OK(et->Recover(GetParam(), &st));

    uint64_t rows = 0;
    ASSERT_OK(et->dc().btree().CheckWellFormed(&rows));
    EXPECT_EQ(et->dc().btree().row_count(), rows)
        << "recovered counter drifted from the true row count at "
        << threads << " threads";
    const std::string digest = ContentDigest(et.get());
    if (threads == 1) {
      serial_digest = digest;
      serial_rows = et->dc().btree().row_count();
    } else {
      EXPECT_EQ(digest, serial_digest) << threads << " threads";
      EXPECT_EQ(et->dc().btree().row_count(), serial_rows)
          << "num_rows diverged at " << threads << " threads";
    }
  }
}

TEST_P(ParallelRecoveryTest, OracleVerifiesAfterParallelRecovery) {
  EngineOptions o = SmallOptions();
  o.recovery_threads = 4;
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(o, &e));
  WorkloadDriver driver(e.get(), MixedWorkload());
  BuildMixedCrashImage(e.get(), &driver);
  RecoveryStats st;
  ASSERT_OK(e->Recover(GetParam(), &st));
  EXPECT_EQ(st.redo_threads, 4u);
  uint64_t checked = 0;
  ASSERT_OK(driver.Verify(0, &checked));
  EXPECT_GT(checked, 0u);
}

// Pass-level equivalence, logical family: the parallel pipeline must make
// exactly the serial pass's decisions — same scan/examine/apply/skip
// counters, same memo hits, same ATT (loser set), same max txn id.
TEST(ParallelRedoPass, LogicalCountersAndAttMatchSerial) {
  EngineOptions o = SmallOptions();
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(o, &e));
  WorkloadDriver driver(e.get(), MixedWorkload());
  BuildMixedCrashImage(e.get(), &driver);
  Engine::StableSnapshot snap;
  ASSERT_OK(e->TakeStableSnapshot(&snap));
  const Lsn start = e->wal().master().bckpt_lsn;

  auto run_pass = [&](uint32_t threads, RedoResult* rr,
                      std::string* digest) {
    ASSERT_OK(e->RestoreStableSnapshot(snap));
    ASSERT_OK(e->dc().OpenDatabase());
    e->dc().monitor().set_enabled(false);
    e->dc().pool().set_callbacks_enabled(false);
    DcRecoveryResult dcr;
    ASSERT_OK(RunDcRecovery(&e->wal(), &e->dc(), start, o.dpt_mode,
                            /*build_dpt=*/true, /*preload=*/false, &dcr));
    if (threads == 1) {
      ASSERT_OK(RunLogicalRedo(&e->wal(), &e->dc(), start, true, &dcr.dpt,
                               dcr.last_delta_tc_lsn, nullptr, o, rr));
    } else {
      ASSERT_OK(RunLogicalRedoParallel(&e->wal(), &e->dc(), start, true,
                                       &dcr.dpt, dcr.last_delta_tc_lsn,
                                       nullptr, o, threads, rr));
    }
    *digest = ContentDigest(e.get());
    e->SimulateCrash();
  };

  RedoResult serial;
  std::string serial_digest;
  run_pass(1, &serial, &serial_digest);
  for (uint32_t threads : {2u, 4u}) {
    RedoResult par;
    std::string digest;
    run_pass(threads, &par, &digest);
    EXPECT_EQ(digest, serial_digest) << threads << " threads";
    EXPECT_EQ(par.records_scanned, serial.records_scanned);
    EXPECT_EQ(par.examined, serial.examined);
    EXPECT_EQ(par.applied, serial.applied);
    EXPECT_EQ(par.skipped_dpt, serial.skipped_dpt);
    EXPECT_EQ(par.skipped_rlsn, serial.skipped_rlsn);
    EXPECT_EQ(par.skipped_plsn, serial.skipped_plsn);
    EXPECT_EQ(par.tail_ops, serial.tail_ops);
    EXPECT_EQ(par.leaf_memo_hits, serial.leaf_memo_hits);
    EXPECT_EQ(par.max_txn_id, serial.max_txn_id);
    EXPECT_EQ(par.threads_used, threads);

    // Identical loser set with identical chain tails.
    std::vector<std::pair<TxnId, Lsn>> a(serial.att.begin(),
                                         serial.att.end());
    std::vector<std::pair<TxnId, Lsn>> b(par.att.begin(), par.att.end());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "ATT diverged at " << threads << " threads";
  }
}

// Pass-level equivalence, SQL family — including SMO/DDL barriers inside
// the redone window (a table created after the checkpoint).
TEST(ParallelRedoPass, SqlCountersMatchSerialWithDdlInWindow) {
  EngineOptions o = SmallOptions();
  std::unique_ptr<Engine> e;
  ASSERT_OK(Engine::Open(o, &e));
  WorkloadDriver driver(e.get(), MixedWorkload());
  ASSERT_OK(driver.RunOps(300));
  ASSERT_OK(e->Checkpoint());
  ASSERT_OK(driver.RunOps(200));
  // DDL inside the redone window: its kCreateTable record forces the
  // parallel dispatcher through the barrier path.
  const TableId kSide = 7;
  ASSERT_OK(e->CreateTable(kSide, 16));
  {
    Table side;
    ASSERT_OK(e->OpenTable(kSide, &side));
    Txn t;
    ASSERT_OK(e->Begin(&t));
    for (Key k = 0; k < 40; k++) {
      ASSERT_OK(t.Insert(side, k, std::string(16, static_cast<char>('a' + (k % 26)))));
    }
    ASSERT_OK(t.Commit());
  }
  ASSERT_OK(driver.RunOps(200));
  driver.OnCrash();
  e->SimulateCrash();
  Engine::StableSnapshot snap;
  ASSERT_OK(e->TakeStableSnapshot(&snap));

  auto run_pass = [&](uint32_t threads, RedoResult* rr,
                      std::string* digest) {
    ASSERT_OK(e->RestoreStableSnapshot(snap));
    ASSERT_OK(e->dc().OpenDatabase());
    e->dc().monitor().set_enabled(false);
    e->dc().pool().set_callbacks_enabled(false);
    const Lsn start = e->wal().master().bckpt_lsn;
    SqlAnalysisResult ar;
    ASSERT_OK(RunSqlAnalysis(&e->wal(), start, &ar));
    if (threads == 1) {
      ASSERT_OK(RunSqlRedo(&e->wal(), &e->dc(), ar.redo_start_lsn, &ar.dpt,
                           /*prefetch=*/false, o, rr));
    } else {
      ASSERT_OK(RunSqlRedoParallel(&e->wal(), &e->dc(), ar.redo_start_lsn,
                                   &ar.dpt, /*prefetch=*/false, o, threads,
                                   rr));
    }
    *digest = ContentDigest(e.get());
    BTree* side = e->dc().FindTable(kSide);
    ASSERT_NE(side, nullptr) << "DDL not replayed";
    ASSERT_OK(side->ScanAll([&](Key k, Slice v) {
      digest->append(reinterpret_cast<const char*>(&k), sizeof(k));
      digest->append(v.data(), v.size());
    }));
    e->SimulateCrash();
  };

  RedoResult serial;
  std::string serial_digest;
  run_pass(1, &serial, &serial_digest);
  for (uint32_t threads : {2u, 4u}) {
    RedoResult par;
    std::string digest;
    run_pass(threads, &par, &digest);
    EXPECT_EQ(digest, serial_digest) << threads << " threads";
    EXPECT_EQ(par.records_scanned, serial.records_scanned);
    EXPECT_EQ(par.examined, serial.examined);
    EXPECT_EQ(par.applied, serial.applied);
    EXPECT_EQ(par.skipped_dpt, serial.skipped_dpt);
    EXPECT_EQ(par.skipped_rlsn, serial.skipped_rlsn);
    EXPECT_EQ(par.skipped_plsn, serial.skipped_plsn);
    EXPECT_EQ(par.smo_redone, serial.smo_redone);
    EXPECT_GT(par.smo_barriers, 0u) << "DDL window must take barriers";
  }
}

// The partition map and DPT sharding invariants the pipeline relies on.
TEST(DptShards, PartitionAndUnionInvariants) {
  DirtyPageTable dpt;
  for (PageId pid = 1; pid <= 500; pid++) {
    dpt.AddExact(pid, /*rlsn=*/pid * 10, /*last_lsn=*/pid * 10 + 5);
  }
  for (uint32_t n : {2u, 4u, 7u}) {
    std::vector<DirtyPageTable> shards;
    BuildDptShards(dpt, n, &shards);
    ASSERT_EQ(shards.size(), n);
    size_t total = 0;
    for (uint32_t i = 0; i < n; i++) total += shards[i].size();
    EXPECT_EQ(total, dpt.size());
    for (PageId pid = 1; pid <= 500; pid++) {
      const uint32_t part = RedoPartitionOf(pid, n);
      for (uint32_t i = 0; i < n; i++) {
        const DirtyPageTable::Entry* e = shards[i].Find(pid);
        if (i == part) {
          ASSERT_NE(e, nullptr);
          EXPECT_EQ(e->rlsn, pid * 10);
          EXPECT_EQ(e->last_lsn, pid * 10 + 5);
        } else {
          EXPECT_EQ(e, nullptr);
        }
      }
    }
  }
}

}  // namespace
}  // namespace deutero
