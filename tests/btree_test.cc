// Unit + property tests for the B+tree: bulk load geometry, point ops,
// logged SMO splits (leaf, internal, root), crash-redo of SMOs, preload,
// and a randomized differential test against std::map.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "btree/btree.h"
#include "btree/node.h"
#include "common/random.h"
#include "common/value_codec.h"
#include "sim/clock.h"
#include "sim/sim_disk.h"
#include "storage/allocator.h"
#include "storage/buffer_pool.h"
#include "wal/log_manager.h"

namespace deutero {
namespace {

constexpr uint32_t kPageSize = 512;
constexpr uint32_t kValueSize = 20;
// Leaf capacity: (512-32)/28 = 17; internal: (512-32)/12 = 40.

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() { Reset(256); }

  void Reset(uint64_t cache_pages) {
    options_ = EngineOptions();
    options_.page_size = kPageSize;
    options_.value_size = kValueSize;
    options_.cache_pages = cache_pages;
    clock_ = std::make_unique<SimClock>();
    disk_ = std::make_unique<SimDisk>(clock_.get(), kPageSize, options_.io);
    pool_ = std::make_unique<BufferPool>(clock_.get(), disk_.get(),
                                         cache_pages, kPageSize);
    log_ = std::make_unique<LogManager>(clock_.get(), 8192, 0.25);
    // Page 0 is the (unused here) catalog page; the root gets page 1.
    allocator_ = std::make_unique<PageAllocator>(disk_.get(), 2);
    tree_ = std::make_unique<BTree>(
        clock_.get(), disk_.get(), pool_.get(), allocator_.get(), log_.get(),
        kRootPageId, kPageSize, kValueSize, options_.leaf_fill_fraction,
        options_.io.cpu_per_btree_level_us);
  }

  std::string Val(Key k, uint32_t version = 0) {
    return SynthesizeValueString(k, version, kValueSize);
  }

  Status Insert(Key k, uint32_t version = 1) {
    PageId pid = kInvalidPageId;
    DEUTERO_RETURN_NOT_OK(tree_->PrepareInsert(k, &pid));
    return tree_->ApplyInsert(pid, k, Val(k, version), log_->next_lsn() + 1);
  }

  EngineOptions options_;
  std::unique_ptr<SimClock> clock_;
  std::unique_ptr<SimDisk> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<PageAllocator> allocator_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, CreateEmptyHasLeafRoot) {
  ASSERT_TRUE(tree_->CreateEmpty().ok());
  EXPECT_EQ(tree_->height(), 1u);
  uint64_t rows = 0;
  ASSERT_TRUE(tree_->CheckWellFormed(&rows).ok());
  EXPECT_EQ(rows, 0u);
}

TEST_F(BTreeTest, BulkLoadSingleLeaf) {
  ASSERT_TRUE(tree_->BulkLoad(10, [this](Key k, uint8_t* dst) {
                       SynthesizeValue(k, 0, kValueSize, dst);
                     }).ok());
  EXPECT_EQ(tree_->height(), 1u);
  uint64_t rows = 0;
  ASSERT_TRUE(tree_->CheckWellFormed(&rows).ok());
  EXPECT_EQ(rows, 10u);
  std::string v;
  ASSERT_TRUE(tree_->Read(7, &v).ok());
  EXPECT_EQ(v, Val(7));
}

TEST_F(BTreeTest, BulkLoadMultiLevel) {
  ASSERT_TRUE(tree_->BulkLoad(5000, [this](Key k, uint8_t* dst) {
                       SynthesizeValue(k, 0, kValueSize, dst);
                     }).ok());
  EXPECT_GE(tree_->height(), 3u);
  uint64_t rows = 0;
  ASSERT_TRUE(tree_->CheckWellFormed(&rows).ok());
  EXPECT_EQ(rows, 5000u);
  // Spot-check reads across the key space.
  for (Key k : {0ull, 1ull, 2499ull, 4999ull}) {
    std::string v;
    ASSERT_TRUE(tree_->Read(k, &v).ok()) << k;
    EXPECT_EQ(v, Val(k));
  }
  std::string v;
  EXPECT_TRUE(tree_->Read(5000, &v).IsNotFound());
}

TEST_F(BTreeTest, BulkLoadLeafSiblingChainIsComplete) {
  ASSERT_TRUE(tree_->BulkLoad(1000, [this](Key k, uint8_t* dst) {
                       SynthesizeValue(k, 0, kValueSize, dst);
                     }).ok());
  uint64_t seen = 0;
  Key expected = 0;
  ASSERT_TRUE(tree_->ScanAll([&](Key k, Slice v) {
                       EXPECT_EQ(k, expected++);
                       EXPECT_EQ(v.size(), kValueSize);
                       seen++;
                     }).ok());
  EXPECT_EQ(seen, 1000u);
}

TEST_F(BTreeTest, FindDoesNotTouchLeaves) {
  ASSERT_TRUE(tree_->BulkLoad(2000, [this](Key k, uint8_t* dst) {
                       SynthesizeValue(k, 0, kValueSize, dst);
                     }).ok());
  pool_->ResetStats();
  PageId pid = kInvalidPageId;
  ASSERT_TRUE(tree_->Find(1234, &pid).ok());
  EXPECT_EQ(pool_->stats().data_fetches, 0u);
  EXPECT_GT(pool_->stats().index_fetches, 0u);
  // The returned pid really owns the key.
  std::string v;
  ASSERT_TRUE(tree_->Read(1234, &v).ok());
}

TEST_F(BTreeTest, UpdateOverwritesInPlaceAndStampsPlsn) {
  ASSERT_TRUE(tree_->BulkLoad(100, [this](Key k, uint8_t* dst) {
                       SynthesizeValue(k, 0, kValueSize, dst);
                     }).ok());
  PageId pid = kInvalidPageId;
  ASSERT_TRUE(tree_->Find(42, &pid).ok());
  ASSERT_TRUE(tree_->ApplyUpdate(pid, 42, Val(42, 5), 9000).ok());
  std::string v;
  ASSERT_TRUE(tree_->Read(42, &v).ok());
  EXPECT_EQ(v, Val(42, 5));
  PageHandle h;
  ASSERT_TRUE(pool_->Get(pid, PageClass::kData, &h).ok());
  EXPECT_EQ(h.view().plsn(), 9000u);
}

TEST_F(BTreeTest, UpdateMissingKeyIsNotFound) {
  ASSERT_TRUE(tree_->BulkLoad(100, [this](Key k, uint8_t* dst) {
                       SynthesizeValue(k, 0, kValueSize, dst);
                     }).ok());
  PageId pid = kInvalidPageId;
  ASSERT_TRUE(tree_->Find(40, &pid).ok());
  EXPECT_TRUE(tree_->ApplyUpdate(pid, 100000, Val(1), 1).IsNotFound());
}

TEST_F(BTreeTest, InsertsSplitLeavesAndLogSmos) {
  ASSERT_TRUE(tree_->CreateEmpty().ok());
  const uint64_t before =
      log_->stats().by_type[static_cast<size_t>(LogRecordType::kSmo)];
  for (Key k = 0; k < 200; k++) ASSERT_TRUE(Insert(k).ok());
  const uint64_t smos =
      log_->stats().by_type[static_cast<size_t>(LogRecordType::kSmo)] - before;
  EXPECT_GT(smos, 5u);  // 200 rows / 17 per leaf forces many splits
  EXPECT_GT(tree_->stats().root_splits, 0u);
  uint64_t rows = 0;
  ASSERT_TRUE(tree_->CheckWellFormed(&rows).ok());
  EXPECT_EQ(rows, 200u);
}

TEST_F(BTreeTest, ReverseAndRandomInsertOrdersStayWellFormed) {
  for (int mode = 0; mode < 2; mode++) {
    Reset(256);
    ASSERT_TRUE(tree_->CreateEmpty().ok());
    Random rng(mode + 1);
    std::map<Key, bool> present;
    for (int i = 0; i < 500; i++) {
      Key k;
      if (mode == 0) {
        k = 100000 - i;  // descending
      } else {
        do {
          k = rng.Uniform(1000000);
        } while (present.count(k));
      }
      present[k] = true;
      ASSERT_TRUE(Insert(k).ok());
    }
    uint64_t rows = 0;
    ASSERT_TRUE(tree_->CheckWellFormed(&rows).ok());
    EXPECT_EQ(rows, 500u);
    Key prev = 0;
    bool first = true;
    uint64_t seen = 0;
    ASSERT_TRUE(tree_->ScanAll([&](Key k, Slice) {
                         if (!first) {
                           EXPECT_GT(k, prev);
                         }
                         prev = k;
                         first = false;
                         seen++;
                       }).ok());
    EXPECT_EQ(seen, 500u);
  }
}

TEST_F(BTreeTest, DeleteRemovesRow) {
  ASSERT_TRUE(tree_->BulkLoad(100, [this](Key k, uint8_t* dst) {
                       SynthesizeValue(k, 0, kValueSize, dst);
                     }).ok());
  PageId pid = kInvalidPageId;
  ASSERT_TRUE(tree_->Find(10, &pid).ok());
  ASSERT_TRUE(tree_->ApplyDelete(pid, 10, 500).ok());
  std::string v;
  EXPECT_TRUE(tree_->Read(10, &v).IsNotFound());
  uint64_t rows = 0;
  ASSERT_TRUE(tree_->CheckWellFormed(&rows).ok());
  EXPECT_EQ(rows, 99u);
}

TEST_F(BTreeTest, SmoRedoReinstallsImagesIdempotently) {
  ASSERT_TRUE(tree_->CreateEmpty().ok());
  for (Key k = 0; k < 60; k++) ASSERT_TRUE(Insert(k).ok());
  log_->Flush();

  // Collect the SMO records, then simulate a crash where NOTHING was
  // flushed: the device still has only the empty tree.
  std::vector<LogRecord> smos;
  for (auto it = log_->NewIterator(kFirstLsn, false); it.Valid(); it.Next()) {
    if (it.record().type == LogRecordType::kSmo) {
      smos.push_back(it.record().ToOwned());
    }
  }
  ASSERT_GT(smos.size(), 0u);

  pool_->Reset();
  // Redo all SMOs twice — idempotence via the per-page pLSN test.
  for (int round = 0; round < 2; round++) {
    for (const LogRecord& rec : smos) {
      ASSERT_TRUE(RedoPhysicalImages(pool_.get(), disk_.get(),
                                     allocator_.get(), kPageSize, rec)
                      .ok());
    }
  }
  uint64_t rows = 0;
  ASSERT_TRUE(tree_->CheckWellFormed(&rows).ok());
  // The tree structure is restored; rows reflect whatever leaf images the
  // SMO records captured (a well-formed prefix of history).
}

TEST_F(BTreeTest, PreloadIndexLoadsAllInternalPages) {
  ASSERT_TRUE(tree_->BulkLoad(5000, [this](Key k, uint8_t* dst) {
                       SynthesizeValue(k, 0, kValueSize, dst);
                     }).ok());
  ASSERT_GE(tree_->height(), 3u);
  pool_->Reset();
  pool_->ResetStats();
  ASSERT_TRUE(tree_->PreloadIndex().ok());
  const uint64_t index_pages_loaded =
      pool_->stats().index_fetches + pool_->stats().misses;
  EXPECT_GT(index_pages_loaded, 2u);
  EXPECT_EQ(pool_->stats().data_fetches, 0u);  // never touches leaves
  // Subsequent traversals hit only cached index pages.
  pool_->ResetStats();
  PageId pid = kInvalidPageId;
  ASSERT_TRUE(tree_->Find(4321, &pid).ok());
  EXPECT_EQ(pool_->stats().misses, 0u);
}

TEST_F(BTreeTest, RefreshHeightMatchesRootLevel) {
  ASSERT_TRUE(tree_->BulkLoad(3000, [this](Key k, uint8_t* dst) {
                       SynthesizeValue(k, 0, kValueSize, dst);
                     }).ok());
  const uint32_t height = tree_->height();
  tree_->set_height(1);  // stale, as after arbitrary SMO redo
  ASSERT_TRUE(tree_->RefreshHeight().ok());
  EXPECT_EQ(tree_->height(), height);
}

TEST_F(BTreeTest, TwoTreesShareAllocatorWithoutCollisions) {
  ASSERT_TRUE(tree_->CreateEmpty().ok());
  const PageId other_root = allocator_->Allocate();
  BTree other(clock_.get(), disk_.get(), pool_.get(), allocator_.get(),
              log_.get(), other_root, kPageSize, kValueSize,
              options_.leaf_fill_fraction,
              options_.io.cpu_per_btree_level_us);
  ASSERT_TRUE(other.CreateEmpty().ok());
  for (Key k = 0; k < 120; k++) {
    ASSERT_TRUE(Insert(k).ok());
    PageId pid;
    ASSERT_TRUE(other.PrepareInsert(k + 1000, &pid).ok());
    ASSERT_TRUE(other
                    .ApplyInsert(pid, k + 1000, Val(k + 1000, 1),
                                 log_->next_lsn() + 1)
                    .ok());
  }
  uint64_t rows_a = 0, rows_b = 0;
  ASSERT_TRUE(tree_->CheckWellFormed(&rows_a).ok());
  ASSERT_TRUE(other.CheckWellFormed(&rows_b).ok());
  EXPECT_EQ(rows_a, 120u);
  EXPECT_EQ(rows_b, 120u);
}

// Differential test: random interleaving of inserts and updates vs std::map.
TEST_F(BTreeTest, RandomOpsMatchStdMap) {
  Reset(64);  // small cache: force eviction traffic through the tree
  ASSERT_TRUE(tree_->CreateEmpty().ok());
  Random rng(99);
  std::map<Key, std::string> oracle;
  for (int i = 0; i < 3000; i++) {
    const int op = static_cast<int>(rng.Uniform(100));
    if (op < 55 || oracle.empty()) {
      Key k;
      do {
        k = rng.Uniform(100000);
      } while (oracle.count(k));
      const std::string v = Val(k, static_cast<uint32_t>(i));
      PageId pid;
      ASSERT_TRUE(tree_->PrepareInsert(k, &pid).ok());
      ASSERT_TRUE(tree_->ApplyInsert(pid, k, v, i + 10).ok());
      oracle[k] = v;
    } else if (op < 90) {
      auto it = oracle.begin();
      std::advance(it, rng.Uniform(oracle.size()));
      const std::string v = Val(it->first, static_cast<uint32_t>(i + 7));
      PageId pid;
      ASSERT_TRUE(tree_->Find(it->first, &pid).ok());
      ASSERT_TRUE(tree_->ApplyUpdate(pid, it->first, v, i + 10).ok());
      it->second = v;
    } else {
      auto it = oracle.begin();
      std::advance(it, rng.Uniform(oracle.size()));
      std::string v;
      ASSERT_TRUE(tree_->Read(it->first, &v).ok());
      ASSERT_EQ(v, it->second);
    }
  }
  uint64_t rows = 0;
  ASSERT_TRUE(tree_->CheckWellFormed(&rows).ok());
  EXPECT_EQ(rows, oracle.size());
  // Full scan equivalence.
  auto expect = oracle.begin();
  ASSERT_TRUE(tree_->ScanAll([&](Key k, Slice v) {
                       ASSERT_NE(expect, oracle.end());
                       EXPECT_EQ(k, expect->first);
                       EXPECT_EQ(v.ToString(), expect->second);
                       ++expect;
                     }).ok());
  EXPECT_EQ(expect, oracle.end());
}

}  // namespace
}  // namespace deutero
