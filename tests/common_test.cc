// Unit tests for common/: Status, coding, Slice, Random, Zipfian, value
// codec.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/value_codec.h"

namespace deutero {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ConstructorsAndPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_FALSE(Status::NotFound("x").ok());
}

TEST(StatusTest, ToStringIncludesMessage) {
  EXPECT_EQ(Status::Corruption("bad page").ToString(), "Corruption: bad page");
  EXPECT_EQ(Status::NotFound().ToString(), "NotFound");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto f = []() -> Status {
    DEUTERO_RETURN_NOT_OK(Status::Busy("inner"));
    return Status::OK();
  };
  EXPECT_TRUE(f().IsBusy());
}

TEST(CodingTest, Fixed1632And64RoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed64(&buf, 0x0123456789ABCDEFULL);
  EXPECT_EQ(buf.size(), 14u);
  EXPECT_EQ(DecodeFixed16(buf.data()), 0xBEEF);
  EXPECT_EQ(DecodeFixed32(buf.data() + 2), 0xDEADBEEFu);
  EXPECT_EQ(DecodeFixed64(buf.data() + 6), 0x0123456789ABCDEFULL);
}

TEST(CodingTest, VarintRoundTripBoundaries) {
  const std::vector<uint64_t> values = {
      0, 1, 127, 128, 16383, 16384, 1u << 21, (1u << 28) - 1, 1ull << 28,
      1ull << 35, 1ull << 63, std::numeric_limits<uint64_t>::max()};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  Slice in(buf);
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(&in, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Varint32RoundTripSweep) {
  std::string buf;
  for (uint32_t shift = 0; shift < 32; shift++) {
    PutVarint32(&buf, (1u << shift) - 1);
    PutVarint32(&buf, 1u << shift);
  }
  Slice in(buf);
  for (uint32_t shift = 0; shift < 32; shift++) {
    uint32_t a = 0, b = 0;
    ASSERT_TRUE(GetVarint32(&in, &a));
    ASSERT_TRUE(GetVarint32(&in, &b));
    EXPECT_EQ(a, (1u << shift) - 1);
    EXPECT_EQ(b, 1u << shift);
  }
}

TEST(CodingTest, TruncatedVarintFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  for (size_t cut = 0; cut + 1 < buf.size(); cut++) {
    Slice in(buf.data(), cut);
    uint64_t v;
    EXPECT_FALSE(GetVarint64(&in, &v)) << "cut=" << cut;
  }
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("hello"));
  PutLengthPrefixed(&buf, Slice(""));
  PutLengthPrefixed(&buf, Slice(std::string(300, 'x')));
  Slice in(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 300u);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, LengthPrefixedTruncationFails) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("payload"));
  Slice in(buf.data(), buf.size() - 2);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixed(&in, &out));
}

TEST(SliceTest, CompareAndEquality) {
  EXPECT_EQ(Slice("abc").Compare(Slice("abc")), 0);
  EXPECT_LT(Slice("abb").Compare(Slice("abc")), 0);
  EXPECT_GT(Slice("abd").Compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("x") == Slice("x"));
  EXPECT_TRUE(Slice("x") != Slice("y"));
}

TEST(SliceTest, RemovePrefix) {
  Slice s("abcdef");
  s.RemovePrefix(2);
  EXPECT_EQ(s.ToString(), "cdef");
  EXPECT_EQ(s[0], 'c');
}

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 1000; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) {
    if (a.Next() == b.Next()) same++;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformStaysInRange) {
  Random r(99);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(r.Uniform(37), 37u);
  }
}

TEST(RandomTest, UniformCoversRangeRoughly) {
  Random r(5);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 100000; i++) hits[r.Uniform(10)]++;
  for (int h : hits) {
    EXPECT_GT(h, 8500);
    EXPECT_LT(h, 11500);
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random r(7);
  for (int i = 0; i < 10000; i++) {
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfianTest, StaysInRange) {
  ZipfianGenerator z(1000, 0.99, 42);
  for (int i = 0; i < 10000; i++) EXPECT_LT(z.Next(), 1000u);
}

TEST(ZipfianTest, SkewsTowardSmallKeys) {
  ZipfianGenerator z(100000, 0.99, 42);
  uint64_t low = 0;
  const int n = 50000;
  for (int i = 0; i < n; i++) {
    if (z.Next() < 1000) low++;  // hottest 1% of the keyspace
  }
  // With theta=0.99 the hottest 1% draws far more than 1% of accesses.
  EXPECT_GT(low, static_cast<uint64_t>(n) / 10);
}

TEST(ZipfianTest, DeterministicForSameSeed) {
  ZipfianGenerator a(5000, 0.8, 9), b(5000, 0.8, 9);
  for (int i = 0; i < 500; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(ValueCodecTest, DeterministicAndVersionSensitive) {
  const std::string v0 = SynthesizeValueString(42, 0, 26);
  const std::string v0b = SynthesizeValueString(42, 0, 26);
  const std::string v1 = SynthesizeValueString(42, 1, 26);
  const std::string other = SynthesizeValueString(43, 0, 26);
  EXPECT_EQ(v0, v0b);
  EXPECT_NE(v0, v1);
  EXPECT_NE(v0, other);
  EXPECT_EQ(v0.size(), 26u);
}

TEST(ValueCodecTest, SizeRespected) {
  for (uint32_t size : {1u, 8u, 26u, 100u}) {
    EXPECT_EQ(SynthesizeValueString(7, 3, size).size(), size);
  }
}

}  // namespace
}  // namespace deutero
