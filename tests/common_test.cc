// Unit tests for common/: Status, coding, Slice, CRC-32C, Random, Zipfian,
// value codec.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/value_codec.h"

namespace deutero {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ConstructorsAndPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_FALSE(Status::NotFound("x").ok());
}

TEST(StatusTest, ToStringIncludesMessage) {
  EXPECT_EQ(Status::Corruption("bad page").ToString(), "Corruption: bad page");
  EXPECT_EQ(Status::NotFound().ToString(), "NotFound");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto f = []() -> Status {
    DEUTERO_RETURN_NOT_OK(Status::Busy("inner"));
    return Status::OK();
  };
  EXPECT_TRUE(f().IsBusy());
}

TEST(CodingTest, Fixed1632And64RoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed64(&buf, 0x0123456789ABCDEFULL);
  EXPECT_EQ(buf.size(), 14u);
  EXPECT_EQ(DecodeFixed16(buf.data()), 0xBEEF);
  EXPECT_EQ(DecodeFixed32(buf.data() + 2), 0xDEADBEEFu);
  EXPECT_EQ(DecodeFixed64(buf.data() + 6), 0x0123456789ABCDEFULL);
}

TEST(CodingTest, VarintRoundTripBoundaries) {
  const std::vector<uint64_t> values = {
      0, 1, 127, 128, 16383, 16384, 1u << 21, (1u << 28) - 1, 1ull << 28,
      1ull << 35, 1ull << 63, std::numeric_limits<uint64_t>::max()};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  Slice in(buf);
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(&in, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Varint32RoundTripSweep) {
  std::string buf;
  for (uint32_t shift = 0; shift < 32; shift++) {
    PutVarint32(&buf, (1u << shift) - 1);
    PutVarint32(&buf, 1u << shift);
  }
  Slice in(buf);
  for (uint32_t shift = 0; shift < 32; shift++) {
    uint32_t a = 0, b = 0;
    ASSERT_TRUE(GetVarint32(&in, &a));
    ASSERT_TRUE(GetVarint32(&in, &b));
    EXPECT_EQ(a, (1u << shift) - 1);
    EXPECT_EQ(b, 1u << shift);
  }
}

// ---------------------------------------------------------------------------
// CRC-32C: published check vectors (RFC 3720 §B.4) plus implementation
// cross-checks, so the slicing-by-8 and hardware paths can never drift from
// the standard Castagnoli polynomial (or from each other).
// ---------------------------------------------------------------------------

TEST(Crc32cTest, Rfc3720CheckVectors) {
  // The classic CRC "check" value.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);

  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);

  std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);

  std::string incrementing;
  for (int i = 0; i < 32; i++) incrementing.push_back(static_cast<char>(i));
  EXPECT_EQ(Crc32c(incrementing.data(), incrementing.size()), 0x46DD794Eu);

  std::string decrementing;
  for (int i = 31; i >= 0; i--) decrementing.push_back(static_cast<char>(i));
  EXPECT_EQ(Crc32c(decrementing.data(), decrementing.size()), 0x113FDB5Cu);
}

TEST(Crc32cTest, SoftwareMatchesCheckVectors) {
  EXPECT_EQ(Crc32cSoftware("123456789", 9), 0xE3069283u);
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32cSoftware(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, IncrementalChainingEqualsOneShot) {
  Random rng(99);
  std::string buf(1021, '\0');
  for (char& c : buf) c = static_cast<char>(rng.Uniform(256));
  const uint32_t whole = Crc32c(buf.data(), buf.size());
  // Split at every kind of boundary an 8-byte-block implementation cares
  // about: 0, 1, 7, 8, 9, and mid-buffer.
  for (size_t split : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                       buf.size() / 2, buf.size()}) {
    const uint32_t a = Crc32c(buf.data(), split);
    const uint32_t chained = Crc32c(buf.data() + split, buf.size() - split, a);
    EXPECT_EQ(chained, whole) << "split=" << split;
  }
}

TEST(Crc32cTest, HardwareAgreesWithSoftwareOnRandomBuffers) {
  if (!Crc32cHardwareAvailable()) {
    GTEST_SKIP() << "no hardware CRC32C on this CPU";
  }
  Random rng(7);
  for (int trial = 0; trial < 200; trial++) {
    const size_t n = rng.Uniform(70);  // covers 0..69: tails of every length
    const size_t pad = rng.Uniform(8);  // unaligned starts
    std::string buf(pad + n, '\0');
    for (char& c : buf) c = static_cast<char>(rng.Uniform(256));
    const uint32_t init = static_cast<uint32_t>(rng.Next());
    EXPECT_EQ(Crc32cHardware(buf.data() + pad, n, init),
              Crc32cSoftware(buf.data() + pad, n, init))
        << "n=" << n << " pad=" << pad << " init=" << init;
  }
  // And a large buffer, to exercise the 8-byte main loops of both.
  std::string big(64 * 1024 + 3, '\0');
  for (char& c : big) c = static_cast<char>(rng.Uniform(256));
  EXPECT_EQ(Crc32cHardware(big.data(), big.size()),
            Crc32cSoftware(big.data(), big.size()));
}

TEST(Crc32cTest, InitZeroMatchesUnseeded) {
  EXPECT_EQ(Crc32c("abc", 3, 0), Crc32c("abc", 3));
  EXPECT_EQ(Crc32cSoftware("abc", 3, 0), Crc32cSoftware("abc", 3));
}

TEST(CodingTest, TruncatedVarintFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  for (size_t cut = 0; cut + 1 < buf.size(); cut++) {
    Slice in(buf.data(), cut);
    uint64_t v;
    EXPECT_FALSE(GetVarint64(&in, &v)) << "cut=" << cut;
  }
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("hello"));
  PutLengthPrefixed(&buf, Slice(""));
  PutLengthPrefixed(&buf, Slice(std::string(300, 'x')));
  Slice in(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 300u);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, LengthPrefixedTruncationFails) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("payload"));
  Slice in(buf.data(), buf.size() - 2);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixed(&in, &out));
}

TEST(SliceTest, CompareAndEquality) {
  EXPECT_EQ(Slice("abc").Compare(Slice("abc")), 0);
  EXPECT_LT(Slice("abb").Compare(Slice("abc")), 0);
  EXPECT_GT(Slice("abd").Compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("x") == Slice("x"));
  EXPECT_TRUE(Slice("x") != Slice("y"));
}

TEST(SliceTest, RemovePrefix) {
  Slice s("abcdef");
  s.RemovePrefix(2);
  EXPECT_EQ(s.ToString(), "cdef");
  EXPECT_EQ(s[0], 'c');
}

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 1000; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) {
    if (a.Next() == b.Next()) same++;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformStaysInRange) {
  Random r(99);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(r.Uniform(37), 37u);
  }
}

TEST(RandomTest, UniformCoversRangeRoughly) {
  Random r(5);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 100000; i++) hits[r.Uniform(10)]++;
  for (int h : hits) {
    EXPECT_GT(h, 8500);
    EXPECT_LT(h, 11500);
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random r(7);
  for (int i = 0; i < 10000; i++) {
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfianTest, StaysInRange) {
  ZipfianGenerator z(1000, 0.99, 42);
  for (int i = 0; i < 10000; i++) EXPECT_LT(z.Next(), 1000u);
}

TEST(ZipfianTest, SkewsTowardSmallKeys) {
  ZipfianGenerator z(100000, 0.99, 42);
  uint64_t low = 0;
  const int n = 50000;
  for (int i = 0; i < n; i++) {
    if (z.Next() < 1000) low++;  // hottest 1% of the keyspace
  }
  // With theta=0.99 the hottest 1% draws far more than 1% of accesses.
  EXPECT_GT(low, static_cast<uint64_t>(n) / 10);
}

TEST(ZipfianTest, DeterministicForSameSeed) {
  ZipfianGenerator a(5000, 0.8, 9), b(5000, 0.8, 9);
  for (int i = 0; i < 500; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(ValueCodecTest, DeterministicAndVersionSensitive) {
  const std::string v0 = SynthesizeValueString(42, 0, 26);
  const std::string v0b = SynthesizeValueString(42, 0, 26);
  const std::string v1 = SynthesizeValueString(42, 1, 26);
  const std::string other = SynthesizeValueString(43, 0, 26);
  EXPECT_EQ(v0, v0b);
  EXPECT_NE(v0, v1);
  EXPECT_NE(v0, other);
  EXPECT_EQ(v0.size(), 26u);
}

TEST(ValueCodecTest, SizeRespected) {
  for (uint32_t size : {1u, 8u, 26u, 100u}) {
    EXPECT_EQ(SynthesizeValueString(7, 3, size).size(), size);
  }
}

}  // namespace
}  // namespace deutero
