// Allocation-freedom tests for the three hot paths this repo optimizes:
// recovery-time log scans, log append, and the buffer-pool page table.
//
// The binary replaces global operator new/delete with counting wrappers
// (malloc-backed, so ASan's allocator interception still applies underneath)
// and asserts that steady-state operations on the hot paths perform ZERO
// per-record heap allocations. A regression that reintroduces a per-record
// copy or a node-based map shows up here as a hard test failure, not a
// silent perf cliff.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>
#include <string>

#include <algorithm>
#include <memory>

#include "concurrency/group_commit.h"
#include "core/engine.h"
#include "core/replica.h"
#include "recovery/dpt.h"
#include "recovery/prefetch.h"
#include "sim/clock.h"
#include "sim/sim_disk.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/page_table.h"
#include "wal/log_manager.h"

namespace {

std::atomic<uint64_t> g_alloc_count{0};

}  // namespace

// Replacement global allocation functions (C++ [replacement.functions]).
// Counting happens on every path the standard library can take.
//
// GCC's middle end inlines the std::free() below into `new`/`delete`
// expressions (e.g. gtest's test factories) and then pairs it against
// `operator new`, flagging -Wmismatched-new-delete at -O2 even though every
// replacement operator new here allocates with malloc/aligned_alloc. The
// pairing is consistent by construction, so silence the false positive for
// this TU (which exists precisely to replace the global allocator).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (n + static_cast<std::size_t>(al) - 1) /
                                       static_cast<std::size_t>(al) *
                                       static_cast<std::size_t>(al))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace deutero {
namespace {

uint64_t CountAllocs(const std::function<void()>& fn) {
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  fn();
  return g_alloc_count.load(std::memory_order_relaxed) - before;
}

class HotPathAllocTest : public ::testing::Test {
 protected:
  HotPathAllocTest() : log_(&clock_, 8192, 0.0) {}

  void AppendUpdates(int n) {
    LogRecord r;
    r.type = LogRecordType::kUpdate;
    r.table_id = 1;
    r.before.assign(26, 'a');
    r.after.assign(26, 'b');
    for (int i = 0; i < n; i++) {
      r.txn_id = static_cast<TxnId>(1 + i / 10);
      r.key = static_cast<Key>(i);
      r.pid = static_cast<PageId>(i % 977);
      log_.Append(r);
    }
  }

  SimClock clock_;
  LogManager log_;
};

TEST_F(HotPathAllocTest, RecoveryScanOfDataOpsIsAllocationFree) {
  AppendUpdates(2000);
  log_.Flush();
  // Warm-up scan: lets the iterator's (empty-for-data-ops) scratch settle.
  uint64_t checksum = 0;
  for (auto it = log_.NewIterator(kFirstLsn, false); it.Valid(); it.Next()) {
    checksum += it.record().key;
  }
  // Steady state: a full scan decoding every record must not allocate.
  uint64_t checksum2 = 0;
  const uint64_t allocs = CountAllocs([&] {
    for (auto it = log_.NewIterator(kFirstLsn, true); it.Valid(); it.Next()) {
      const LogRecordView& rec = it.record();
      checksum2 += rec.key + rec.pid + rec.after.size() + rec.before.size();
    }
  });
  EXPECT_EQ(allocs, 0u) << "per-record heap allocations crept back into the "
                           "recovery scan path";
  EXPECT_GE(checksum2, checksum);
}

TEST_F(HotPathAllocTest, ScanWithDeltaAndSmoRecordsReusesScratch) {
  // Non-data-op records DO carry vectors/images; the iterator's scratch must
  // absorb them after one warm-up pass (capacity reuse, no churn).
  AppendUpdates(100);
  for (int i = 0; i < 20; i++) {
    LogRecord d;
    d.type = LogRecordType::kDeltaRecord;
    d.tc_lsn = 10;
    d.fw_lsn = 5;
    for (int j = 0; j < 32; j++) {
      d.dirty_set.push_back(static_cast<PageId>(j));
      d.written_set.push_back(static_cast<PageId>(j + 1000));
    }
    log_.Append(d);
    LogRecord s;
    s.type = LogRecordType::kSmo;
    s.alloc_hwm = 50;
    s.smo_pages.push_back({static_cast<PageId>(i), std::string(8192, 'x')});
    log_.Append(s);
  }
  log_.Flush();
  // A fresh iterator grows its vector scratch once (first Δ and first SMO
  // record seen); after that the scratch is reused. So a whole scan costs
  // O(1) allocations — independent of record count — and none of them copy
  // page-image bytes.
  uint64_t image_bytes = 0;
  const uint64_t first_scan = CountAllocs([&] {
    for (auto it = log_.NewIterator(kFirstLsn, false); it.Valid();
         it.Next()) {
      for (const auto& p : it.record().smo_pages) image_bytes += p.image.size();
    }
  });
  EXPECT_LE(first_scan, 8u) << "scan allocations scale with record count";
  EXPECT_EQ(image_bytes, 20u * 8192u);
  // Doubling the record count must not change the per-scan allocation cost.
  for (int i = 0; i < 20; i++) {
    LogRecord d;
    d.type = LogRecordType::kDeltaRecord;
    d.tc_lsn = 10;
    d.fw_lsn = 5;
    for (int j = 0; j < 32; j++) d.dirty_set.push_back(static_cast<PageId>(j));
    log_.Append(d);
    LogRecord s;
    s.type = LogRecordType::kSmo;
    s.alloc_hwm = 50;
    s.smo_pages.push_back({static_cast<PageId>(i), std::string(8192, 'x')});
    log_.Append(s);
  }
  log_.Flush();
  const uint64_t second_scan = CountAllocs([&] {
    for (auto it = log_.NewIterator(kFirstLsn, false); it.Valid();
         it.Next()) {
      for (const auto& p : it.record().smo_pages) image_bytes += p.image.size();
    }
  });
  EXPECT_LE(second_scan, first_scan)
      << "scan allocations grew with the log: scratch is not being reused";
}

TEST_F(HotPathAllocTest, ReadRecordAtIntoHoistedRecordIsAllocationFree) {
  // The undo hot path (ISSUE 9): loser rollback walks backward chains with
  // random-access ReadRecordAt into ONE hoisted LogRecord. DecodePayload
  // assigns every field through the zero-copy view's CopyTo, reusing the
  // record's string/vector capacity — so after one warm-up read the whole
  // walk performs zero heap allocations per record.
  AppendUpdates(2000);
  log_.Flush();
  std::vector<Lsn> lsns;
  for (auto it = log_.NewIterator(kFirstLsn, false); it.Valid(); it.Next()) {
    lsns.push_back(it.record().lsn);
  }
  ASSERT_EQ(lsns.size(), 2000u);
  LogRecord rec;  // hoisted, as RunUndo hoists its scratch records
  ASSERT_TRUE(log_.ReadRecordAt(lsns[0], &rec, false).ok());  // warm-up
  uint64_t checksum = 0;
  const uint64_t allocs = CountAllocs([&] {
    // Reverse order, as undo reads, including repeated re-reads.
    for (size_t i = lsns.size(); i-- > 0;) {
      (void)log_.ReadRecordAt(lsns[i], &rec, false);
      checksum += rec.key + rec.before.size() + rec.after.size();
    }
  });
  EXPECT_EQ(allocs, 0u) << "per-record heap allocations crept back into the "
                           "undo rollback path (ReadRecordAt scratch reuse)";
  EXPECT_GT(checksum, 0u);
}

TEST_F(HotPathAllocTest, SteadyStateAppendDoesNotAllocatePerRecord) {
  // Warm the log so buffer_ capacity is comfortably ahead of the tail.
  AppendUpdates(4096);
  // The record is built OUTSIDE the counted region (its owned strings are
  // the caller's business); Append itself must not allocate except for
  // (rare) geometric buffer growth — with ~70-byte records after a
  // 4096-record warm-up, at most one growth step can land in this window.
  LogRecord r;
  r.type = LogRecordType::kUpdate;
  r.txn_id = 1;
  r.table_id = 1;
  r.before.assign(26, 'a');
  r.after.assign(26, 'b');
  const uint64_t allocs = CountAllocs([&] {
    for (int i = 0; i < 256; i++) {
      r.key = static_cast<Key>(i);
      r.pid = static_cast<PageId>(i);
      log_.Append(r);
    }
  });
  EXPECT_LE(allocs, 1u) << "Append is allocating per record again "
                           "(payload temporaries?)";
}

// ---------------------------------------------------------------------------
// The handle-API hot paths: snapshot Scan and WriteBatch apply.
// ---------------------------------------------------------------------------

namespace {

deutero::EngineOptions ApiAllocOptions() {
  deutero::EngineOptions o;
  o.page_size = 1024;
  o.value_size = 26;
  o.num_rows = 3000;
  o.cache_pages = 512;  // whole tree resident: no evictions/flushes
  o.lazy_writer_base_fraction = 0;  // background writer off
  o.lazy_writer_reference_cache_pages = 512;
  return o;
}

}  // namespace

TEST(EngineApiAllocTest, ScanCursorIsAllocationFreePerRow) {
  using namespace deutero;  // NOLINT
  std::unique_ptr<Engine> e;
  ASSERT_TRUE(Engine::Open(ApiAllocOptions(), &e).ok());
  Table table;
  ASSERT_TRUE(e->OpenDefaultTable(&table).ok());
  // Warm-up scan loads every leaf into the (large enough) cache.
  uint64_t warm_rows = 0;
  {
    ScanCursor c;
    ASSERT_TRUE(table.Scan(0, 2999, &c).ok());
    while (c.Valid()) {
      warm_rows++;
      ASSERT_TRUE(c.Next().ok());
    }
  }
  ASSERT_EQ(warm_rows, 3000u);
  // Steady state: opening the cursor and visiting every row — keys and
  // borrowed values included — must not allocate at all.
  uint64_t rows = 0;
  uint64_t byte_sum = 0;
  const uint64_t allocs = CountAllocs([&] {
    ScanCursor c;
    (void)table.Scan(0, 2999, &c);
    while (c.Valid()) {
      byte_sum += static_cast<uint8_t>(c.value().data()[0]) + c.key();
      rows++;
      (void)c.Next();
    }
  });
  EXPECT_EQ(allocs, 0u) << "per-row heap allocations in the Scan cursor";
  EXPECT_EQ(rows, 3000u);
  EXPECT_GT(byte_sum, 0u);
}

TEST(EngineApiAllocTest, WriteBatchApplyIsAllocationFreePerOp) {
  using namespace deutero;  // NOLINT
  std::unique_ptr<Engine> e;
  ASSERT_TRUE(Engine::Open(ApiAllocOptions(), &e).ok());
  Table table;
  ASSERT_TRUE(e->OpenDefaultTable(&table).ok());
  const std::string value(26, 'v');
  WriteBatch batch;
  auto build = [&] {
    batch.Clear();
    for (Key k = 0; k < 64; k++) batch.Update(k * 11, value);
    batch.Delete(700);
    batch.Insert(700, value);  // delete + re-insert exercises both paths
  };
  // Warm up: lock-table entries, txn slots, TC scratch capacity, batch
  // arena, log buffer headroom.
  for (int round = 0; round < 32; round++) {
    build();
    ASSERT_TRUE(e->Apply(table, batch).ok());
  }
  // The Δ-record monitor's DirtySet grows (amortized) with every dirtying;
  // it is an orthogonal subsystem with its own amortization story — quiesce
  // it to isolate the API path under test.
  e->dc().monitor().set_enabled(false);
  // Count two identical applies and take the minimum: the log buffer grows
  // geometrically, so at most one of two consecutive windows can land on a
  // doubling. The surviving count is the true per-batch cost: zero, for a
  // 66-operation batch (Begin + 66 data ops + Commit + flush).
  uint64_t best = ~0ull;
  for (int attempt = 0; attempt < 2; attempt++) {
    const uint64_t allocs = CountAllocs([&] {
      build();
      (void)e->Apply(table, batch);
    });
    best = std::min(best, allocs);
  }
  EXPECT_EQ(best, 0u)
      << "per-op heap allocations crept into the WriteBatch apply path "
         "(TC scratch record? lock-table pooling? batch arena?)";
}

// ---------------------------------------------------------------------------
// The hot-standby apply path: pulling a chunk off the channel, mirroring it,
// and applying its committed transactions reuses member scratch throughout —
// chunk buffer, in-flight op pool, record views, cursor images, WAL headroom.
// ---------------------------------------------------------------------------

TEST(ReplicationAllocTest, SteadyStateChunkApplyIsAllocationFreePerOp) {
  using namespace deutero;  // NOLINT
  EngineOptions popts = ApiAllocOptions();
  popts.checkpoint_interval_updates = 1u << 30;  // checkpoint-free stream
  std::unique_ptr<Engine> primary;
  ASSERT_TRUE(Engine::Open(popts, &primary).ok());
  EngineOptions sopts = popts;
  sopts.page_size = 2048;       // cross-geometry apply
  sopts.recovery_threads = 1;   // serial applier (the crew has its own pools)
  std::unique_ptr<LogicalReplica> standby;
  ASSERT_TRUE(LogicalReplica::Open(sopts, &standby).ok());
  // The Δ-record monitors amortize independently (see WriteBatch test above);
  // quiesce both so the counted window isolates the replication path.
  primary->dc().monitor().set_enabled(false);
  standby->engine().dc().monitor().set_enabled(false);

  Table table;
  ASSERT_TRUE(primary->OpenDefaultTable(&table).ok());
  const std::string value(26, 'v');
  WriteBatch batch;
  auto lead = [&](Key base) {
    batch.Clear();
    for (Key k = 0; k < 48; k++) batch.Update((base + k * 7) % 3000, value);
    ASSERT_TRUE(primary->Apply(table, batch).ok());
  };
  ReplicationChannel channel;
  // Warm up: scratch capacities settle (chunk buffer, in-flight pool, txn
  // slots, mirror + standby WAL headroom, the cursor-row image strings).
  for (int i = 0; i < 16; i++) {
    lead(static_cast<Key>(i));
    channel.Publish(*primary);
    ASSERT_TRUE(standby->Pump(&channel).ok());
  }
  // Both logs grow geometrically, so at most one of three identical windows
  // can land on a doubling — the minimum is the true per-chunk cost: zero.
  uint64_t best = ~0ull;
  for (int attempt = 0; attempt < 3; attempt++) {
    lead(static_cast<Key>(100 + attempt));
    channel.Publish(*primary);
    const uint64_t allocs =
        CountAllocs([&] { (void)standby->Pump(&channel); });
    best = std::min(best, allocs);
  }
  EXPECT_EQ(best, 0u)
      << "per-op heap allocations crept into the standby chunk-apply path "
         "(image copies in the in-flight table? per-txn node maps?)";
  ASSERT_EQ(standby->stats().applied_boundary, channel.published_end());
}

TEST(PageTableAllocTest, PutFindEraseAreAllocationFreeAfterConstruction) {
  PageTable table(256);
  uint64_t missing = 0;  // checked outside the counted region
  const uint64_t allocs = CountAllocs([&] {
    for (uint32_t round = 0; round < 50; round++) {
      for (PageId pid = 0; pid < 256; pid++) {
        table.Put(pid + round, pid);
      }
      for (PageId pid = 0; pid < 256; pid++) {
        if (table.Find(pid + round) == nullptr) missing++;
        table.Erase(pid + round);
      }
    }
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(missing, 0u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(BufferPoolAllocTest, ResidentGetIsAllocationFree) {
  SimClock clock;
  SimDisk disk(&clock, 256, IoModelOptions{});
  disk.EnsurePages(64);
  BufferPool pool(&clock, &disk, /*capacity=*/32, /*page_size=*/256);
  for (PageId pid = 0; pid < 32; pid++) {
    PageHandle h;
    ASSERT_TRUE(pool.Get(pid, PageClass::kData, &h).ok());
  }
  const uint64_t allocs = CountAllocs([&] {
    for (int round = 0; round < 100; round++) {
      for (PageId pid = 0; pid < 32; pid++) {
        PageHandle h;
        (void)pool.Get(pid, PageClass::kData, &h);
      }
    }
  });
  EXPECT_EQ(allocs, 0u) << "buffer-pool hits are allocating";
}

TEST(BufferPoolAllocTest, ChecksumVerifyOnReadInIsAllocationFree) {
  // Every miss CRCs the whole page (PR 7); the verify must run in the
  // frame arena with zero heap traffic, or large scans would churn.
  SimClock clock;
  SimDisk disk(&clock, 256, IoModelOptions{});
  disk.EnsurePages(256);
  alignas(8) uint8_t buf[256] = {};
  for (PageId pid = 0; pid < 256; pid++) {
    PageView p(buf, 256);
    p.Format(pid, PageType::kLeaf, 0);
    StampPageChecksum(buf, 256);  // real CRC, not the legacy 0 marker
    disk.WriteImageDirect(pid, buf);
  }
  BufferPool pool(&clock, &disk, /*capacity=*/16, /*page_size=*/256);
  // Warm-up lap: settles frame arena, page table, clean-eviction sweep.
  for (PageId pid = 0; pid < 64; pid++) {
    PageHandle h;
    ASSERT_TRUE(pool.Get(pid, PageClass::kData, &h).ok());
  }
  const uint64_t allocs = CountAllocs([&] {
    for (PageId pid = 64; pid < 256; pid++) {
      PageHandle h;
      (void)pool.Get(pid, PageClass::kData, &h);  // miss: read + CRC verify
    }
  });
  EXPECT_EQ(allocs, 0u) << "checksum verification allocates on read-in";
  EXPECT_EQ(pool.stats().checksum_failures, 0u);
}

// ---------------------------------------------------------------------------
// The prefetch path: BufferPool::Prefetch and both recovery prefetchers
// reuse member scratch — a steady pump stream performs zero allocations.
// ---------------------------------------------------------------------------

TEST(PrefetchAllocTest, PoolPrefetchIsAllocationFreePerCall) {
  SimClock clock;
  SimDisk disk(&clock, 256, IoModelOptions{});
  disk.EnsurePages(4096);
  BufferPool pool(&clock, &disk, /*capacity=*/256, /*page_size=*/256);
  std::vector<PageId> batch;
  auto issue_and_claim = [&](PageId base) {
    batch.clear();
    for (PageId p = base; p < base + 16; p++) batch.push_back(p);
    pool.Prefetch(batch, PageClass::kData);
    clock.AdvanceMs(1000);  // let the I/O land
    for (PageId p = base; p < base + 16; p++) {
      PageHandle h;
      (void)pool.Get(p, PageClass::kData, &h);  // claim: frame evictable
    }
  };
  batch.reserve(16);
  issue_and_claim(0);  // warm-up: member scratch capacities settle
  issue_and_claim(16);
  const uint64_t allocs = CountAllocs([&] {
    for (PageId base = 32; base < 1024; base += 16) issue_and_claim(base);
  });
  EXPECT_EQ(allocs, 0u) << "BufferPool::Prefetch is allocating per call";
}

TEST(PrefetchAllocTest, PfListPumpIsAllocationFreePerPump) {
  SimClock clock;
  SimDisk disk(&clock, 256, IoModelOptions{});
  disk.EnsurePages(4096);
  BufferPool pool(&clock, &disk, /*capacity=*/256, /*page_size=*/256);
  DirtyPageTable dpt;
  std::vector<PageId> pf_list;
  for (PageId p = 1; p < 2000; p++) {
    pf_list.push_back(p);
    dpt.AddOrUpdate(p, /*lsn=*/p);
  }
  PfListPrefetcher pf(&pool, &dpt, &pf_list, /*window=*/16);
  auto pump_and_claim = [&](PageId base) {
    pf.Pump();
    clock.AdvanceMs(1000);
    for (PageId p = base; p < base + 8; p++) {
      PageHandle h;
      (void)pool.Get(p, PageClass::kData, &h);
    }
  };
  for (PageId base = 1; base < 257; base += 8) pump_and_claim(base);
  const uint64_t allocs = CountAllocs([&] {
    for (PageId base = 257; base < 1025; base += 8) pump_and_claim(base);
  });
  EXPECT_EQ(allocs, 0u) << "PfListPrefetcher::Pump is allocating";
}

TEST(PrefetchAllocTest, LogDrivenPumpIsAllocationFreePerPump) {
  SimClock clock;
  LogManager log(&clock, 8192, 0.0);
  DirtyPageTable dpt;
  {
    LogRecord r;
    r.type = LogRecordType::kUpdate;
    r.table_id = 1;
    r.after.assign(26, 'b');
    for (int i = 0; i < 2000; i++) {
      r.txn_id = 1 + i / 10;
      r.key = static_cast<Key>(i);
      r.pid = static_cast<PageId>(1 + i);
      dpt.AddOrUpdate(r.pid, log.next_lsn());
      log.Append(r);
    }
    log.Flush();
  }
  SimDisk disk(&clock, 256, IoModelOptions{});
  disk.EnsurePages(4096);
  BufferPool pool(&clock, &disk, /*capacity=*/256, /*page_size=*/256);
  LogDrivenPrefetcher pf(&pool, &dpt, &log, kFirstLsn, /*window=*/16,
                         /*lookahead_records=*/128);
  uint64_t consumed = 0;
  auto pump_and_claim = [&] {
    consumed += 8;
    pf.Pump(consumed);
    clock.AdvanceMs(1000);
    for (PageId p = static_cast<PageId>(consumed - 7);
         p <= static_cast<PageId>(consumed); p++) {
      PageHandle h;
      (void)pool.Get(p, PageClass::kData, &h);
    }
  };
  for (int i = 0; i < 32; i++) pump_and_claim();  // warm-up
  const uint64_t allocs = CountAllocs([&] {
    for (int i = 0; i < 96; i++) pump_and_claim();
  });
  EXPECT_EQ(allocs, 0u) << "LogDrivenPrefetcher::Pump is allocating";
}

TEST(GroupCommitAllocTest, SteadyStateCommitWaitIsAllocationFree) {
  // The commit fast path of the concurrent front end: enqueue a durability
  // request, the batcher flushes the window, the waiter wakes. Waiter
  // slots live in a fixed pool, so after warm-up a whole
  // enqueue -> batch flush -> wake cycle must not touch the heap — on
  // EITHER side: the global counter sees the batcher thread's allocations
  // too.
  std::atomic<Lsn> tail{0};
  std::atomic<Lsn> stable{0};
  GroupCommit gc(
      /*flush=*/[&] {
        stable.store(tail.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
        return stable.load(std::memory_order_relaxed);
      },
      /*stable=*/[&] { return stable.load(std::memory_order_relaxed); },
      /*window_us=*/50, /*max_batch=*/4);
  gc.Start();
  auto one_commit = [&] {
    const Lsn mine = tail.fetch_add(64, std::memory_order_relaxed) + 64;
    const Status st = gc.WaitDurable(mine);
    ASSERT_TRUE(st.ok()) << st.ToString();
  };
  for (int i = 0; i < 64; i++) one_commit();  // warm-up
  const uint64_t allocs = CountAllocs([&] {
    for (int i = 0; i < 256; i++) one_commit();
  });
  EXPECT_EQ(allocs, 0u) << "group-commit enqueue/flush/wake is allocating";
  gc.Stop();
}

}  // namespace
}  // namespace deutero
