// Logical log shipping to a physically different replica — the paper's §1.1
// replication motivation: "the data can be replicated in a database using a
// different kind of stable storage, e.g. a disk with different page size...
// Because the log records shipped to the replica are logical, they can be
// applied to disparate physical system configurations."
//
// The primary uses 8 KB pages; the replica 2 KB pages with a smaller cache.
// Committed transactions stream across; the replica converges to the same
// logical table content, then survives a crash of its own using logical
// recovery.
#include <cstdio>
#include <memory>

#include "core/replica.h"
#include "workload/driver.h"

using namespace deutero;  // NOLINT

int main() {
  EngineOptions primary_opts;
  primary_opts.num_rows = 50'000;
  primary_opts.page_size = 8192;
  primary_opts.cache_pages = 256;
  primary_opts.lazy_writer_reference_cache_pages = 256;

  EngineOptions replica_opts = primary_opts;
  replica_opts.page_size = 2048;  // different physical geometry
  replica_opts.cache_pages = 512;

  std::unique_ptr<Engine> primary;
  if (!Engine::Open(primary_opts, &primary).ok()) return 1;
  std::unique_ptr<LogicalReplica> replica;
  if (!LogicalReplica::Open(replica_opts, &replica).ok()) return 1;

  std::printf("primary: %u KB pages, B-tree height %u\n",
              primary_opts.page_size / 1024, primary->dc().btree().height());
  std::printf("replica: %u KB pages, B-tree height %u\n",
              replica_opts.page_size / 1024,
              replica->engine().dc().btree().height());

  // Stream five batches of transactions.
  WorkloadDriver driver(primary.get(), WorkloadConfig{});
  Lsn next = kFirstLsn;
  for (int batch = 0; batch < 5; batch++) {
    if (!driver.RunOps(500).ok()) return 1;
    if (!replica->SyncFrom(primary->wal(), next, &next).ok()) return 1;
    std::printf("batch %d: replica applied %llu txns / %llu ops total\n",
                batch + 1, (unsigned long long)replica->txns_applied(),
                (unsigned long long)replica->ops_applied());
  }

  // Compare full logical content across the two geometries.
  uint64_t rows = 0;
  bool identical = true;
  {
    std::vector<std::pair<Key, std::string>> a, b;
    (void)primary->dc().btree().ScanAll(
        [&](Key k, Slice v) { a.emplace_back(k, v.ToString()); });
    (void)replica->engine().dc().btree().ScanAll(
        [&](Key k, Slice v) { b.emplace_back(k, v.ToString()); });
    identical = a == b;
    rows = a.size();
  }
  std::printf("content comparison over %llu rows: %s\n",
              (unsigned long long)rows,
              identical ? "IDENTICAL" : "DIVERGED (bug!)");

  // The replica is a full engine: crash and logically recover it.
  replica->engine().SimulateCrash();
  RecoveryStats st;
  if (!replica->engine().Recover(RecoveryMethod::kLog2, &st).ok()) return 1;
  std::printf("replica crash-recovered (Log2) in %.1f simulated ms\n",
              st.total_ms);
  return identical ? 0 : 1;
}
