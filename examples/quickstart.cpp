// Quickstart: open an engine, run transactions, crash it, recover with
// optimized logical recovery (Log2), and verify the outcome.
//
//   $ quickstart
//
// Walks through the whole public API surface in ~80 lines.
#include <cstdio>
#include <memory>
#include <string>

#include "core/engine.h"

using namespace deutero;  // NOLINT

int main() {
  // A small database: 100k rows of (key, 26-byte data), 8 KB pages.
  EngineOptions options;
  options.num_rows = 100'000;
  options.cache_pages = 512;
  options.lazy_writer_reference_cache_pages = 512;
  options.checkpoint_interval_updates = 1000;

  std::unique_ptr<Engine> db;
  Status st = Engine::Open(options, &db);
  if (!st.ok()) {
    std::fprintf(stderr, "open failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("opened: %llu rows, B-tree height %u\n",
              (unsigned long long)options.num_rows,
              db->dc().btree().height());

  // A committed transaction...
  Table table;
  (void)db->OpenDefaultTable(&table);
  const std::string committed_value(options.value_size, 'C');
  {
    Txn txn;
    (void)db->Begin(&txn);
    for (Key k = 100; k < 110; k++) {
      (void)txn.Update(table, k, committed_value);
    }
    (void)txn.Commit();
  }

  (void)db->Checkpoint();

  // ...more committed work after the checkpoint...
  {
    Txn txn;
    (void)db->Begin(&txn);
    for (Key k = 200; k < 210; k++) {
      (void)txn.Update(table, k, committed_value);
    }
    (void)txn.Commit();
  }

  // ...and a loser: updates on the log, but never committed.
  const std::string uncommitted_value(options.value_size, 'U');
  Txn loser;
  (void)db->Begin(&loser);
  (void)loser.Update(table, 300, uncommitted_value);
  db->tc().ForceLog();  // the loser's records reach the stable log

  std::printf("crashing with one in-flight transaction...\n");
  loser.Release();  // the crash, not the handle, decides its fate
  db->SimulateCrash();

  RecoveryStats stats;
  st = db->Recover(RecoveryMethod::kLog2, &stats);
  if (!st.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "recovered with Log2 in %.1f simulated ms "
      "(redo %.1f ms, %llu ops reapplied, %llu txns undone)\n",
      stats.total_ms, stats.redo.ms, (unsigned long long)stats.redo_applied,
      (unsigned long long)stats.txns_undone);

  // Committed survives; the loser was rolled back.
  std::string v;
  (void)table.Read(205, &v);
  std::printf("key 205: %s\n",
              v == committed_value ? "committed value (correct)" : "WRONG");
  (void)table.Read(300, &v);
  std::printf("key 300: %s\n",
              v == uncommitted_value ? "UNCOMMITTED VALUE LEAKED"
                                     : "rolled back (correct)");

  // The engine is open for business again.
  {
    Txn txn;
    (void)db->Begin(&txn);
    (void)txn.Update(table, 1, committed_value);
    (void)txn.Commit();
  }
  std::printf("post-recovery update committed; done.\n");
  return 0;
}
