// CRUD tour of the first-class handle API: Begin an RAII Txn, Insert /
// Update / Delete through a Table handle, Scan a key range with a cursor,
// apply an atomic WriteBatch, then crash and recover — every operation kind
// replayed logically by the Log-family recovery.
//
//   $ crud_tour
#include <cstdio>
#include <memory>
#include <string>

#include "core/engine.h"

using namespace deutero;  // NOLINT

namespace {

bool Check(bool ok, const char* what) {
  std::printf("  %-46s %s\n", what, ok ? "ok" : "WRONG");
  return ok;
}

}  // namespace

int main() {
  EngineOptions options;
  options.num_rows = 50'000;
  options.cache_pages = 512;
  options.lazy_writer_reference_cache_pages = 512;
  options.checkpoint_interval_updates = 1000;

  std::unique_ptr<Engine> db;
  if (!Engine::Open(options, &db).ok()) return 1;
  Table table;
  if (!db->OpenDefaultTable(&table).ok()) return 1;
  std::printf("opened: table %u, %u-byte values\n", table.id(),
              table.value_size());
  bool all_ok = true;

  const std::string v1(options.value_size, '1');
  const std::string v2(options.value_size, '2');

  // --- Txn: insert, update, delete, commit -------------------------------
  const Key fresh = options.num_rows + 1;  // past the bulk-loaded range
  {
    Txn txn;
    (void)db->Begin(&txn);
    (void)txn.Insert(table, fresh, v1);
    (void)txn.Update(table, 100, v1);
    (void)txn.Delete(table, 101);
    (void)txn.Commit();
  }
  std::string v;
  all_ok &= Check(table.Read(fresh, &v).ok() && v == v1, "insert committed");
  all_ok &= Check(table.Read(101, &v).IsNotFound(), "delete committed");

  // --- RAII: an uncommitted Txn rolls itself back ------------------------
  {
    Txn txn;
    (void)db->Begin(&txn);
    (void)txn.Update(table, 102, v2);
    (void)txn.Delete(table, 103);
    // No Commit: scope exit aborts, restoring both rows.
  }
  all_ok &= Check(table.Read(103, &v).ok(), "scope-exit auto-abort");

  // --- Scan: a snapshot cursor over [98, 105] ----------------------------
  std::printf("scan [98, 105]:");
  ScanCursor cursor;
  (void)table.Scan(98, 105, &cursor);
  uint64_t rows = 0;
  while (cursor.Valid()) {
    std::printf(" %llu", (unsigned long long)cursor.key());
    rows++;
    (void)cursor.Next();
  }
  std::printf("\n");
  all_ok &= Check(rows == 7, "scan skips the deleted key (7 of 8)");

  // --- WriteBatch: atomic multi-op, one commit flush ---------------------
  WriteBatch batch;
  batch.Update(200, v2);
  batch.Delete(201);
  batch.Insert(fresh + 1, v2);
  (void)db->Apply(table, batch);
  all_ok &= Check(table.Read(201, &v).IsNotFound(), "batch applied");

  // A batch with a failing op (duplicate insert) rolls back entirely —
  // and the row it collided with is untouched.
  batch.Clear();
  batch.Update(202, v2);
  batch.Insert(fresh, v2);  // duplicate: fails
  const bool rejected = !db->Apply(table, batch).ok();
  (void)table.Read(202, &v);
  all_ok &= Check(rejected && v != v2, "failed batch fully rolled back");
  all_ok &= Check(table.Read(fresh, &v).ok() && v == v1,
                  "collided row untouched by rollback");

  (void)db->Checkpoint();

  // --- more post-checkpoint work, then crash -----------------------------
  batch.Clear();
  batch.Update(300, v2);
  batch.Delete(301);
  (void)db->Apply(table, batch);
  Txn loser;
  (void)db->Begin(&loser);
  (void)loser.Delete(table, 400);  // uncommitted: must be re-inserted
  db->tc().ForceLog();
  loser.Release();

  std::printf("crash + Log2 recovery...\n");
  db->SimulateCrash();
  RecoveryStats stats;
  if (!db->Recover(RecoveryMethod::kLog2, &stats).ok()) return 1;
  std::printf(
      "  recovered in %.1f simulated ms (%llu ops reapplied, %llu memo "
      "hits, %llu txns undone)\n",
      stats.total_ms, (unsigned long long)stats.redo_applied,
      (unsigned long long)stats.redo_leaf_memo_hits,
      (unsigned long long)stats.txns_undone);

  all_ok &= Check(table.Read(300, &v).ok() && v == v2, "batch update redone");
  all_ok &= Check(table.Read(301, &v).IsNotFound(), "batch delete redone");
  all_ok &= Check(table.Read(400, &v).ok(), "loser delete undone");
  all_ok &= Check(table.Read(101, &v).IsNotFound(), "old delete still gone");

  // The handle API works identically post-recovery.
  {
    Txn txn;
    (void)db->Begin(&txn);
    (void)txn.Update(table, 1, v1);
    (void)txn.Commit();
  }
  std::printf("%s\n", all_ok ? "crud tour complete." : "FAILURES above!");
  return all_ok ? 0 : 1;
}
