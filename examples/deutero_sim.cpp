// deutero_sim — flexible crash/recovery experiment CLI. Runs the paper's
// §5.2 protocol under user-chosen parameters and prints the full recovery
// statistics for any subset of methods.
//
// Usage:
//   deutero_sim [--rows N] [--cache PAGES] [--interval UPDATES]
//               [--checkpoints N] [--methods Log0,Log1,Log2,Sql1,Sql2]
//               [--zipf THETA] [--dpt standard|perfect|reduced]
//               [--scheme penultimate|aries] [--seed N]
//
// Examples:
//   deutero_sim --rows 500000 --cache 2048 --methods Log1,Sql1
//   deutero_sim --zipf 0.99 --interval 8000
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "workload/experiment.h"

using namespace deutero;  // NOLINT

namespace {

bool ParseMethods(const char* arg, std::vector<RecoveryMethod>* out) {
  out->clear();
  std::string s(arg);
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string name = s.substr(pos, comma - pos);
    bool found = false;
    for (RecoveryMethod m :
         {RecoveryMethod::kLog0, RecoveryMethod::kLog1, RecoveryMethod::kLog2,
          RecoveryMethod::kSql1, RecoveryMethod::kSql2}) {
      if (name == RecoveryMethodName(m)) {
        out->push_back(m);
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown method: %s\n", name.c_str());
      return false;
    }
    pos = comma + 1;
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  SideBySideConfig cfg;
  cfg.engine.num_rows = 200'000;
  cfg.engine.cache_pages = 512;
  cfg.engine.lazy_writer_reference_cache_pages = 512;
  cfg.engine.checkpoint_interval_updates = 2000;
  cfg.scenario.checkpoints = 5;
  cfg.verify_sample = 0;

  for (int i = 1; i < argc; i++) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--rows")) {
      cfg.engine.num_rows = std::strtoull(next("--rows"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--cache")) {
      cfg.engine.cache_pages = std::strtoull(next("--cache"), nullptr, 10);
      cfg.engine.lazy_writer_reference_cache_pages = cfg.engine.cache_pages;
    } else if (!std::strcmp(argv[i], "--interval")) {
      cfg.engine.checkpoint_interval_updates =
          std::strtoull(next("--interval"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--checkpoints")) {
      cfg.scenario.checkpoints =
          std::strtoull(next("--checkpoints"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--methods")) {
      if (!ParseMethods(next("--methods"), &cfg.methods)) return 2;
    } else if (!std::strcmp(argv[i], "--zipf")) {
      cfg.workload.distribution = WorkloadConfig::Distribution::kZipfian;
      cfg.workload.zipf_theta = std::strtod(next("--zipf"), nullptr);
    } else if (!std::strcmp(argv[i], "--dpt")) {
      const std::string mode = next("--dpt");
      cfg.engine.dpt_mode = mode == "perfect" ? DptMode::kPerfect
                            : mode == "reduced" ? DptMode::kReduced
                                                : DptMode::kStandard;
    } else if (!std::strcmp(argv[i], "--scheme")) {
      cfg.engine.checkpoint_scheme = std::strcmp(next("--scheme"), "aries")
                                         ? CheckpointScheme::kPenultimate
                                         : CheckpointScheme::kAries;
    } else if (!std::strcmp(argv[i], "--seed")) {
      cfg.engine.seed = std::strtoull(next("--seed"), nullptr, 10);
      cfg.workload.seed = cfg.engine.seed * 31 + 7;
    } else {
      std::fprintf(stderr, "unknown flag %s (see header comment)\n", argv[i]);
      return 2;
    }
  }

  std::printf("deutero_sim: rows=%llu cache=%llu interval=%llu ckpts=%llu\n\n",
              (unsigned long long)cfg.engine.num_rows,
              (unsigned long long)cfg.engine.cache_pages,
              (unsigned long long)cfg.engine.checkpoint_interval_updates,
              (unsigned long long)cfg.scenario.checkpoints);

  SideBySideResult r;
  const Status st = RunSideBySide(cfg, &r);
  if (!st.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("crash: %llu resident, %llu dirty (%.1f%% of cache)\n\n",
              (unsigned long long)r.scenario.resident_at_crash,
              (unsigned long long)r.scenario.dirty_pages_at_crash,
              100.0 * r.scenario.dirty_pages_at_crash /
                  cfg.engine.cache_pages);
  std::printf("%-5s %9s %9s %9s %9s %7s %8s %8s %8s %8s %6s\n", "meth",
              "dc/ana", "redo", "undo", "total", "dpt", "dataIO", "idxIO",
              "applied", "stalls", "ok");
  for (const MethodOutcome& m : r.methods) {
    std::printf(
        "%-5s %9.1f %9.1f %9.1f %9.1f %7llu %8llu %8llu %8llu %8llu %6s\n",
        RecoveryMethodName(m.method),
        m.stats.dc_pass.ms + m.stats.analysis.ms, m.stats.redo.ms,
        m.stats.undo.ms, m.stats.total_ms,
        (unsigned long long)m.stats.dpt_size,
        (unsigned long long)m.stats.data_page_fetches,
        (unsigned long long)m.stats.index_page_fetches,
        (unsigned long long)m.stats.redo_applied,
        (unsigned long long)m.stats.stall_count, m.verified ? "yes" : "-");
  }
  return 0;
}
