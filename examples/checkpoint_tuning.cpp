// Checkpoint-interval tuning demo (paper Appendix C): how the checkpoint
// cadence trades normal-operation flush work against recovery time.
//
// For three checkpoint intervals this example reports:
//   - pages flushed per checkpoint (normal-operation cost),
//   - the redone-log length at a crash,
//   - Log2 recovery time.
//
// Usage: checkpoint_tuning [rows]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "workload/experiment.h"

using namespace deutero;  // NOLINT

int main(int argc, char** argv) {
  const uint64_t rows =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 300'000;

  std::printf("=== checkpoint interval tuning (rows=%llu) ===\n\n",
              (unsigned long long)rows);
  std::printf("%-10s %14s %14s %14s %12s\n", "interval", "bwRecords",
              "redoneRecords", "redo(ms)", "total(ms)");

  for (uint64_t interval : {500ull, 2500ull, 5000ull}) {
    SideBySideConfig cfg;
    cfg.engine.num_rows = rows;
    cfg.engine.cache_pages = 1024;
    cfg.engine.lazy_writer_reference_cache_pages = 1024;
    cfg.engine.checkpoint_interval_updates = interval;
    cfg.scenario.checkpoints = 4;
    cfg.methods = {RecoveryMethod::kLog2};

    SideBySideResult r;
    const Status st = RunSideBySide(cfg, &r);
    if (!st.ok()) {
      std::fprintf(stderr, "failed: %s\n", st.ToString().c_str());
      return 1;
    }
    const RecoveryStats& s = r.methods[0].stats;
    std::printf("%-10llu %14llu %14llu %14.1f %12.1f\n",
                (unsigned long long)interval,
                (unsigned long long)(r.scenario.bw_records_total),
                (unsigned long long)s.redo.records,
                s.redo.ms, s.total_ms);
  }
  std::printf(
      "\nLonger intervals defer checkpoint flushing but lengthen the redone "
      "log and grow the\ndirty page table — recovery takes longer "
      "(paper Appendix C / Figure 3).\n");
  return 0;
}
