// Example: one crash, five recovery methods, side by side (paper §5).
//
// Runs the paper's crash protocol at a configurable scale, then recovers the
// identical crash image under Log0/Log1/Log2/SQL1/SQL2 and prints a table of
// redo time and I/O behaviour — a miniature of Figure 2(a).
//
// Usage: recovery_comparison [cache_pages] [rows] [ckpt_interval]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "workload/experiment.h"

using namespace deutero;  // NOLINT

int main(int argc, char** argv) {
  SideBySideConfig cfg;
  cfg.engine.page_size = 8192;
  cfg.engine.value_size = 26;
  cfg.engine.num_rows = 500'000;  // ~2,300 leaves
  cfg.engine.cache_pages = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 512;
  cfg.engine.num_rows = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                 : cfg.engine.num_rows;
  cfg.engine.checkpoint_interval_updates =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2000;
  cfg.engine.lazy_writer_reference_cache_pages = 512;
  cfg.scenario.checkpoints = 5;
  cfg.verify_sample = 0;

  std::printf("deutero recovery comparison\n");
  std::printf("  rows=%llu cache=%llu pages  ckpt-interval=%llu updates\n\n",
              (unsigned long long)cfg.engine.num_rows,
              (unsigned long long)cfg.engine.cache_pages,
              (unsigned long long)cfg.engine.checkpoint_interval_updates);

  SideBySideResult result;
  const Status st = RunSideBySide(cfg, &result);
  if (!st.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("crash state: %llu resident pages, %llu dirty (%.1f%%)\n\n",
              (unsigned long long)result.scenario.resident_at_crash,
              (unsigned long long)result.scenario.dirty_pages_at_crash,
              100.0 * result.scenario.dirty_pages_at_crash /
                  cfg.engine.cache_pages);

  std::printf(
      "%-5s %10s %9s %8s %8s %8s %8s %8s %8s %8s %6s\n", "meth",
      "redo(ms)", "total", "dpt", "dataIO", "idxIO", "applied", "skipDPT",
      "skipLSN", "stalls", "ok");
  for (const MethodOutcome& m : result.methods) {
    std::printf(
        "%-5s %10.1f %9.1f %8llu %8llu %8llu %8llu %8llu %8llu %8llu %6s\n",
        RecoveryMethodName(m.method), m.stats.redo.ms, m.stats.total_ms,
        (unsigned long long)m.stats.dpt_size,
        (unsigned long long)m.stats.data_page_fetches,
        (unsigned long long)m.stats.index_page_fetches,
        (unsigned long long)m.stats.redo_applied,
        (unsigned long long)m.stats.redo_skipped_dpt,
        (unsigned long long)m.stats.redo_skipped_rlsn,
        (unsigned long long)m.stats.stall_count, m.verified ? "yes" : "-");
  }
  std::printf("\nΔ-records seen by analysis: %llu, BW-records: %llu\n",
              (unsigned long long)result.methods[1].stats.delta_records_seen,
              (unsigned long long)result.methods[1].stats.bw_records_seen);
  return 0;
}
