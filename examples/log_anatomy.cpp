// Anatomy of the integrated common log (paper §5.1): runs a tiny mixed
// workload — DDL, transactions, a checkpoint, Δ/BW-records, an SMO — then
// dumps every stable record, annotating who wrote it (TC vs DC) and which
// recovery family consumes it.
#include <cstdio>
#include <memory>
#include <string>

#include "core/engine.h"
#include "workload/driver.h"

using namespace deutero;  // NOLINT

namespace {

const char* Role(LogRecordType t) {
  switch (t) {
    case LogRecordType::kUpdate:
    case LogRecordType::kInsert:
    case LogRecordType::kDelete:
      return "TC data op     logical key for Log*, PID for SQL*";
    case LogRecordType::kClr:
      return "TC compensation redo-only, skipped by undo";
    case LogRecordType::kTxnBegin:
    case LogRecordType::kTxnCommit:
    case LogRecordType::kTxnAbort:
      return "TC txn control  drives the active-transaction table";
    case LogRecordType::kBeginCheckpoint:
      return "TC checkpoint   carries the captured ATT (+DPT if ARIES)";
    case LogRecordType::kEndCheckpoint:
      return "TC checkpoint   names its bCkpt; master record target";
    case LogRecordType::kBwRecord:
      return "DC (SQL path)   flushed PIDs, prunes the SQL DPT (Alg. 3)";
    case LogRecordType::kDeltaRecord:
      return "DC (Log path)   DirtySet/WrittenSet/FW-LSN (Alg. 4)";
    case LogRecordType::kRsspAck:
      return "DC control      records the redo scan start point";
    case LogRecordType::kSmo:
      return "DC system txn   page-split images, redone before TC redo";
    case LogRecordType::kCreateTable:
      return "DC system txn   DDL: table id + schema + root image";
    default:
      return "";
  }
}

}  // namespace

int main() {
  EngineOptions o;
  o.page_size = 1024;
  o.num_rows = 500;
  o.cache_pages = 32;
  o.lazy_writer_reference_cache_pages = 32;
  o.bw_written_capacity = 8;
  o.delta_dirty_capacity = 20;

  std::unique_ptr<Engine> db;
  if (!Engine::Open(o, &db).ok()) return 1;

  // Some activity of every flavor.
  (void)db->CreateTable(7, 16);
  WorkloadDriver driver(db.get(), WorkloadConfig{});
  (void)driver.RunOps(40);
  Table side_table;
  (void)db->OpenTable(7, &side_table);
  {
    Txn t;
    (void)db->Begin(&t);
    for (Key k = 0; k < 30; k++) {
      (void)t.Insert(side_table, k, std::string(16, 'a'));  // forces a split
    }
    (void)t.Delete(side_table, 5);  // a kDelete record with a before-image
    (void)t.Commit();
  }
  (void)db->Checkpoint();
  {
    Table table;
    (void)db->OpenDefaultTable(&table);
    Txn t;
    (void)db->Begin(&t);
    (void)t.Update(table, 3, std::string(o.value_size, 'z'));
    (void)t.Abort();  // produces a CLR
  }
  db->tc().ForceLog();

  std::printf("%-10s %-16s %-6s %s\n", "LSN", "type", "bytes", "role");
  std::printf("%s\n", std::string(96, '-').c_str());
  Lsn prev = kFirstLsn;
  uint64_t count = 0;
  for (auto it = db->wal().NewIterator(kFirstLsn, false); it.Valid();
       it.Next()) {
    const LogRecordView& rec = it.record();
    const uint64_t size = it.lsn() - prev;
    (void)size;
    std::string extra;
    switch (rec.type) {
      case LogRecordType::kUpdate:
      case LogRecordType::kInsert:
      case LogRecordType::kDelete:
        extra = "  table=" + std::to_string(rec.table_id) +
                " key=" + std::to_string(rec.key) +
                " pid=" + std::to_string(rec.pid);
        break;
      case LogRecordType::kDeltaRecord:
        extra = "  |DirtySet|=" + std::to_string(rec.dirty_set.size()) +
                " |WrittenSet|=" + std::to_string(rec.written_set.size()) +
                " FW-LSN=" + std::to_string(rec.fw_lsn) +
                " FirstDirty=" + std::to_string(rec.first_dirty) +
                " TC-LSN=" + std::to_string(rec.tc_lsn);
        break;
      case LogRecordType::kBwRecord:
        extra = "  |WrittenSet|=" + std::to_string(rec.written_set.size()) +
                " FW-LSN=" + std::to_string(rec.fw_lsn);
        break;
      case LogRecordType::kSmo:
      case LogRecordType::kCreateTable:
        extra = "  pages=" + std::to_string(rec.smo_pages.size()) +
                " alloc-hwm=" + std::to_string(rec.alloc_hwm);
        break;
      case LogRecordType::kBeginCheckpoint:
        extra = "  |ATT|=" + std::to_string(rec.att_txn_ids.size());
        break;
      default:
        break;
    }
    std::printf("%-10llu %-16s %-6llu %s%s\n",
                (unsigned long long)it.lsn(), LogRecordTypeName(rec.type),
                (unsigned long long)it.payload_size(),
                Role(rec.type), extra.c_str());
    prev = it.lsn();
    count++;
    if (count > 120) {
      std::printf("... (truncated)\n");
      break;
    }
  }
  std::printf("\nOne log, two recovery families: Log* reads the logical "
              "fields and Δ-records;\nSQL* reads the PIDs and BW-records. "
              "Both ignore the rest (paper §5.1).\n");
  return 0;
}
